package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"

	"phoenix/internal/apps/kvstore"
	"phoenix/internal/apps/lsmdb"
	"phoenix/internal/apps/webcache"
)

// injConfig labels the Table 7 configurations.
type injConfig struct {
	name       string // "U", "N", "C"
	unsafe     bool
	crossCheck bool
}

// injCell accumulates one (system, config) row of Table 7.
type injCell struct {
	System string
	Config string

	Failures   int // collected observable failures
	Rec        int // successful PHOENIX recoveries
	Chk        int // proactive fallback by unsafe-region check
	ChkCross   int // additional fallback by cross-check
	Fbk        int // fallback by crash shortly after restart
	Additional int // corruption PHOENIX introduced beyond vanilla
	Shared     int // corruption both PHOENIX and vanilla carry
	Silent     int // silent corruption (no crash/hang observed)

	Attempts int // injection runs attempted (incl. non-manifesting)
}

// RunTab7 reproduces the large-scale fault-injection experiment (§4.4):
// random instruction-site faults on deterministic workloads, end-to-end
// output validation against a no-fault ground truth, and a faulty-Vanilla
// comparison run to attribute corruption.
func RunTab7(o Options) error {
	o.fill()
	perCell := 100
	if o.Quick {
		perCell = 10
	}
	type sysCfg struct {
		system  string
		configs []injConfig
	}
	plan := []sysCfg{
		{"kvstore", []injConfig{{"U", true, false}, {"N", false, false}, {"C", true, true}}},
		{"webcache-varnish", []injConfig{{"U", true, false}, {"N", false, false}}},
		{"webcache-squid", []injConfig{{"U", true, false}, {"N", false, false}}},
		{"lsmdb", []injConfig{{"U", true, false}, {"N", false, false}, {"C", true, true}}},
	}
	fmt.Fprintf(o.Out, "%-18s %-4s %5s %5s %5s %6s %5s %5s %5s %9s\n",
		"system", "cfg", "Rec", "Chk", "Fbk", "Rate", "Add", "Shd", "Sil", "attempts")
	var sum injCell
	for _, sc := range plan {
		for _, cfg := range sc.configs {
			// Cross-check collects fewer failures, as in the paper's (C).
			n := perCell
			if cfg.crossCheck {
				n = perCell / 2
				if n == 0 {
					n = 1
				}
			}
			cell, err := runInjectionCell(o, sc.system, cfg, n)
			if err != nil {
				return fmt.Errorf("tab7 %s(%s): %w", sc.system, cfg.name, err)
			}
			printCell(o, cell)
			sum.Failures += cell.Failures
			sum.Rec += cell.Rec
			sum.Chk += cell.Chk
			sum.ChkCross += cell.ChkCross
			sum.Fbk += cell.Fbk
			sum.Additional += cell.Additional
			sum.Shared += cell.Shared
			sum.Silent += cell.Silent
			sum.Attempts += cell.Attempts
		}
	}
	sum.System, sum.Config = "Sum", ""
	printCell(o, sum)
	return nil
}

func printCell(o Options, c injCell) {
	rate := 0.0
	if c.Failures > 0 {
		rate = 100 * float64(c.Rec) / float64(c.Failures)
	}
	chk := fmt.Sprint(c.Chk)
	if c.ChkCross > 0 {
		chk = fmt.Sprintf("%d+%d", c.Chk, c.ChkCross)
	}
	fmt.Fprintf(o.Out, "%-18s %-4s %5d %5s %5d %5.1f%% %5d %5d %5d %9d\n",
		c.System, c.Config, c.Rec, chk, c.Fbk, rate, c.Additional, c.Shared, c.Silent, c.Attempts)
}

// injRun is one injection trial's outcome.
type injRun struct {
	manifested bool
	crashed    bool
	corrupt    bool
	runErr     bool
	stat       recovery.Stats
}

// runInjectionCell collects `want` observable failures for one system/config.
func runInjectionCell(o Options, system string, cfg injConfig, want int) (injCell, error) {
	cell := injCell{System: system, Config: cfg.name}
	for runIdx := 0; cell.Failures < want; runIdx++ {
		if cell.Attempts > want*30 {
			return cell, fmt.Errorf("injection never manifests (%d attempts)", cell.Attempts)
		}
		cell.Attempts++
		seed := o.Seed*100000 + int64(runIdx)*17 + 3
		rng := rand.New(rand.NewSource(seed))

		// Ground truth: same workload, no fault.
		gt, _, err := injExecuteMode(system, cfg, seed, nil, o, recovery.ModePhoenix)
		if err != nil {
			return cell, fmt.Errorf("ground truth run: %w", err)
		}

		// Arming plan: one random (site, type) pair among the sites the
		// first workload half actually activated (the paper's gcov-style
		// filter), captured on first use and replayed for the comparison
		// run.
		var plan []arming
		armFn := func(inj *faultinject.Injector) {
			if plan == nil {
				plan = pickActivated(inj, rng)
			}
			for _, a := range plan {
				inj.Arm(a.site, a.typ)
			}
		}

		// PHOENIX run with injection.
		pDump, pRun, err := injExecuteMode(system, cfg, seed, armFn, o, recovery.ModePhoenix)
		if err != nil {
			return cell, err
		}
		pRun.corrupt = corruptAgainst(pDump, gt, pRun.crashed || pRun.runErr)
		pRun.manifested = pRun.crashed || pRun.corrupt || pRun.runErr
		if !pRun.manifested {
			continue // fault did not trigger an observable failure
		}
		cell.Failures++

		// Faulty-Vanilla comparison for corruption attribution.
		vCfg := injConfig{name: "van", unsafe: false, crossCheck: false}
		vDump, vRun, err := injExecuteMode(system, vCfg, seed, armFn, o, comparisonMode(system))
		vCorrupt := err != nil || vRun.runErr ||
			corruptAgainst(vDump, gt, vRun.crashed || vRun.runErr)

		// Classify.
		switch {
		case pRun.runErr:
			// Could not complete the workload even via fallback (e.g. a
			// corrupted WAL poisoning every recovery).
			cell.Fbk++
		case pRun.stat.UnsafeFallbacks > 0:
			cell.Chk++
		case pRun.stat.CrossFallbacks > 0:
			cell.ChkCross++
		case pRun.stat.GraceFallbacks > 0:
			cell.Fbk++
		case pRun.stat.RecoveryFaultFallbacks > 0:
			// preserve_exec itself failed; counted with the crash-after-
			// restart fallbacks (the outcome is the same default recovery).
			cell.Fbk++
		case pRun.stat.PhoenixRestarts > 0:
			cell.Rec++
		}
		if !pRun.crashed && pRun.corrupt {
			cell.Silent++
		}
		if pRun.corrupt && vCorrupt {
			cell.Shared++
		} else if pRun.corrupt && !vCorrupt {
			cell.Additional++
		}
	}
	return cell, nil
}

// comparisonMode is the baseline the paper validates against: plain restart
// for in-memory systems, the journaled default for LevelDB.
func comparisonMode(system string) recovery.Mode {
	if system == "lsmdb" {
		return recovery.ModeBuiltin
	}
	return recovery.ModeVanilla
}

// arming is a (site, fault type) pair.
type arming struct {
	site string
	typ  faultinject.FaultType
}

// pickActivated draws a random (site, type) pair among the sites that
// executed during the first workload half. Under the paper's assumption
// that bugs are evenly distributed across instructions, most injections
// land in non-modifying code — request parsing, lookups, reply paths —
// because that is where most instructions live (Redis spends only 3.9% of
// its time modifying preserved data, §3.5). Each non-modifying site
// therefore stands in for several times more instructions than a modifying
// one.
func pickActivated(inj *faultinject.Injector, rng *rand.Rand) []arming {
	const nonModifyingWeight = 4
	var active []faultinject.Site
	for _, s := range inj.Sites() {
		if inj.ExecCount(s.ID) == 0 {
			continue
		}
		w := 1
		if !s.Modifying {
			w = nonModifyingWeight
		}
		for i := 0; i < w; i++ {
			active = append(active, s)
		}
	}
	if len(active) == 0 {
		active = inj.Sites()
	}
	s := active[rng.Intn(len(active))]
	types := faultinject.TypesFor(s.Kind)
	return []arming{{site: s.ID, typ: types[rng.Intn(len(types))]}}
}

// injExecuteMode runs one deterministic workload under mode, optionally
// arming faults at the halfway switch point (§4.4's version switching).
func injExecuteMode(system string, cfg injConfig, seed int64, armFn func(*faultinject.Injector),
	o Options, mode recovery.Mode) (dump map[string]string, run injRun, err error) {
	total := 3000
	if o.Quick {
		total = 1500
	}
	m := kernel.NewMachine(seed)
	var inj *faultinject.Injector
	if armFn != nil {
		inj = faultinject.New()
	}

	rcfg := recovery.Config{
		Mode:            mode,
		UnsafeRegions:   cfg.unsafe,
		CrossCheck:      cfg.crossCheck,
		WatchdogTimeout: time.Second,
	}
	var (
		app recovery.App
		gen workload.Generator
		dmp func() map[string]string
	)
	switch system {
	case "kvstore":
		// The paper's Redis injection setup: 90/10 read-insert; values are
		// version-1 only, so validation distinguishes corruption from
		// staleness.
		kv := kvstore.New(kvstore.Config{
			RedoLog: cfg.crossCheck, Cleanup: true,
			BootCost: 20 * time.Millisecond, PhoenixBootCost: 2 * time.Millisecond,
		}, inj)
		gen = workload.NewYCSB(workload.YCSBConfig{
			Seed: seed, Records: 500, ReadFrac: 0.9, InsertFrac: 0.1, ValueSize: 64, ZipfianKeys: true,
		})
		app, dmp = kv, func() map[string]string { return kv.Dump() }
		if cfg.crossCheck {
			rcfg.CheckpointInterval = 10 * time.Millisecond
		} else {
			rcfg.DisablePersistence = true
		}
	case "lsmdb":
		db := lsmdb.New(lsmdb.Config{
			MemtableThreshold: 1 << 20,
			BootCost:          20 * time.Millisecond, PhoenixBootCost: 2 * time.Millisecond,
		}, inj)
		gen = workload.NewFillSeq(64)
		app, dmp = db, func() map[string]string { return db.Dump() }
	case "webcache-varnish", "webcache-squid":
		flavor := webcache.FlavorVarnish
		if system == "webcache-squid" {
			flavor = webcache.FlavorSquid
		}
		web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 400, MeanSize: 2 << 10})
		c := webcache.New(webcache.Config{
			Flavor: flavor, CapacityBytes: 64 << 20,
			BootCost: 20 * time.Millisecond, PhoenixBootCost: 2 * time.Millisecond,
		}, web, inj)
		app, gen, dmp = c, web, func() map[string]string { return c.Dump() }
		rcfg.DisablePersistence = true
	default:
		return nil, run, fmt.Errorf("unknown system %q", system)
	}

	h := recovery.NewHarness(m, rcfg, app, gen, inj)
	if err := h.Boot(); err != nil {
		return nil, run, err
	}
	if err := h.RunRequests(total / 2); err != nil {
		run.runErr = true
		run.stat = h.Stat
		return safeDump(dmp), run, nil
	}
	if inj != nil {
		armFn(inj)
		inj.Enable()
	}
	if err := h.RunRequests(total / 2); err != nil {
		run.runErr = true
	}
	run.crashed = h.Stat.Failures > 0
	run.stat = h.Stat
	return safeDump(dmp), run, nil
}

// safeDump extracts the dump, tolerating corrupted structures (a fault
// during the walk counts as an empty, corrupt dump).
func safeDump(dmp func() map[string]string) (out map[string]string) {
	defer func() {
		if recover() != nil {
			out = map[string]string{"<dump>": "corrupt"}
		}
	}()
	return dmp()
}

// corruptAgainst reports whether the run's end-to-end output violates the
// §4.4 validation policy: present keys must exactly match the ground truth
// (phantom keys and mismatched values are always corruption), and missing
// keys are tolerated only when a recovery actually happened — a run that
// never failed has no legitimate reason to drop data.
func corruptAgainst(dump, gt map[string]string, hadFailure bool) bool {
	for k, v := range dump {
		want, ok := gt[k]
		if !ok || want != v {
			return true
		}
	}
	if !hadFailure && len(dump) < len(gt) {
		return true
	}
	return false
}
