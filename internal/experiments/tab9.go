package experiments

import (
	"fmt"
	"time"

	"phoenix/internal/recovery"
)

// RunTab9 reproduces the memory-reuse accounting (§4.5): for each system,
// warm it up, trigger its representative bug, let PHOENIX recover with the
// mark-and-sweep cleanup, and report:
//
//   - footprint: mapped bytes of the crashed process at failure time (the
//     old address space's mappings survive preserve_exec, so they are read
//     post-mortem);
//   - preserved: live heap bytes right after recovery (post-cleanup);
//   - cleanup: bytes the mark-and-sweep pass freed;
//   - reuse: preserved / footprint.
//
// The paper's headline: ~88% of memory is safely reused on average; the
// compute apps skip cleanup and preserve >90%.
func RunTab9(o Options) error {
	o.fill()
	warm := 10 * time.Second
	if o.Quick {
		warm = 3 * time.Second
	}
	cases := []struct {
		system string
		bug    string
	}{
		{"kvstore", "R3"},
		{"lsmdb", "L1"},
		{"webcache-varnish", "VA1"},
		{"webcache-squid", "S3"},
		{"boost", "X1"},
		{"particle", "VP1"},
	}
	fmt.Fprintf(o.Out, "%-18s %12s %12s %12s %8s\n",
		"system", "footprint", "preserved", "cleanup", "reuse")
	for _, tc := range cases {
		cfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: 2 * time.Second}
		sh, err := buildSystem(tc.system, cfg, o, nil)
		if err != nil {
			return err
		}
		if err := sh.h.RunUntil(sh.h.M.Clock.Now() + warm); err != nil {
			return err
		}
		oldProc := sh.h.Proc()
		sh.arm(tc.bug)
		// Step until the failure has been handled (bounded for safety).
		for i := 0; i < 1000 && sh.h.Stat.Failures == 0; i++ {
			if err := sh.h.Step(); err != nil {
				return err
			}
		}
		if sh.h.Stat.PhoenixRestarts != 1 {
			return fmt.Errorf("tab9 %s: expected one phoenix recovery, got %+v", tc.system, sh.h.Stat)
		}
		// Footprint: the dead process's mappings at crash time.
		footprint := oldProc.AS.MappedBytes()
		h := sh.h.Runtime().MainHeap()
		if h == nil {
			return fmt.Errorf("tab9 %s: no heap after recovery", tc.system)
		}
		preserved := h.Stats().LiveBytes
		_, cleaned := h.LastSweep()
		reuse := 100 * float64(preserved) / float64(footprint)
		fmt.Fprintf(o.Out, "%-18s %12s %12s %12s %7.1f%%\n",
			tc.system, fmtBytes(footprint), fmtBytes(preserved), fmtBytes(cleaned), reuse)
	}
	return nil
}
