package experiments

import (
	"fmt"
	"time"

	"phoenix/internal/analysis"
	"phoenix/internal/core"
	"phoenix/internal/heap"
	"phoenix/internal/ir"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"

	"phoenix/internal/apps/kvstore"
)

// Ablations are not paper artifacts: they isolate the design choices
// DESIGN.md calls out and measure what each buys.
//
//	abl-zerocopy  — zero-copy PTE moves vs physically copying pages
//	abl-cleanup   — mark-and-sweep cleanup on vs off across a restart
//	abl-regions   — tight analyzer-derived unsafe regions vs conservative
//	                whole-function regions (availability cost of imprecision)

// Ablations returns the ablation registry (kept separate from All so the
// default phoenix-bench run remains exactly the paper's artifact set).
func Ablations() []Experiment {
	return []Experiment{
		{"abl-zerocopy", "Ablation: zero-copy PTE transfer vs page copying", RunAblZeroCopy},
		{"abl-cleanup", "Ablation: post-restart mark-and-sweep cleanup on vs off", RunAblCleanup},
		{"abl-regions", "Ablation: tight vs conservative unsafe-region instrumentation", RunAblRegions},
	}
}

// RunAblZeroCopy compares the preserve_exec transfer mechanisms: moving
// page-table entries (the paper's design) against physically copying every
// preserved page (the fallback the kernel uses for partial pages, and what
// a user-space implementation like the Facebook Scuba shared-memory restart
// would pay, §5).
func RunAblZeroCopy(o Options) error {
	o.fill()
	sizes := []int64{4 << 20, 64 << 20, 512 << 20}
	if o.Quick {
		sizes = sizes[:2]
	}
	fmt.Fprintf(o.Out, "%-12s %-14s %-14s %-8s\n", "preserved", "zero-copy", "page-copy", "ratio")
	for _, size := range sizes {
		moved, err := ablTransfer(o.Seed, size, false)
		if err != nil {
			return err
		}
		copied, err := ablTransfer(o.Seed, size, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-12s %-14v %-14v %6.1fx\n",
			fmtBytes(size), moved, copied, float64(copied)/float64(moved))
	}
	return nil
}

// ablTransfer builds a process with `size` bytes of heap and restarts it
// once, either zero-copy (preserve_exec) or via full page copies.
func ablTransfer(seed, size int64, copyPages bool) (time.Duration, error) {
	m := kernel.NewMachine(seed)
	b := linker.NewBuilder("abl", 0x0010_0000)
	b.Var("cfg", 8, linker.SecData)
	p, err := m.Spawn(b.Build())
	if err != nil {
		return 0, err
	}
	rt := core.Init(p, nil)
	h, err := rt.OpenHeap(heap.Options{ArenaSize: 64 << 20, BrkMax: 1 << 20})
	if err != nil {
		return 0, err
	}
	const chunk = 32 << 20
	for allocated := int64(0); allocated < size; {
		n := size - allocated
		if n > chunk {
			n = chunk
		}
		ptr := h.Alloc(int(n))
		if ptr == mem.NullPtr {
			return 0, fmt.Errorf("abl-zerocopy: allocation failed")
		}
		// Touch one word per page so frames exist (copying cost depends on
		// resident pages).
		for off := int64(0); off < n; off += mem.PageSize {
			p.AS.WriteU64(ptr+mem.VAddr(off), 1)
		}
		allocated += n
	}
	info := h.Alloc(16)

	start := m.Clock.Now()
	if !copyPages {
		if _, err := rt.Restart(core.RestartPlan{InfoAddr: info, WithHeap: true}); err != nil {
			return 0, err
		}
		return m.Clock.Now() - start, nil
	}
	// Copy-based preservation: clone every preserved page into the new
	// address space and charge the per-page copy cost.
	dst := mem.NewAddressSpace()
	pages := 0
	for _, r := range h.PreservedRanges() {
		n := mem.PagesFor(r.Len)
		if _, err := p.AS.CopyPages(dst, r.Start, n, mem.KindMmap, "copy"); err != nil {
			return 0, err
		}
		pages += n
	}
	m.Clock.Advance(m.Model.Exec() + m.Model.PhoenixFixed)
	m.Clock.Advance(time.Duration(pages) * m.Model.PageCopy)
	return m.Clock.Now() - start, nil
}

// RunAblCleanup measures what the §3.4 mark-and-sweep cleanup costs at
// recovery time and what it buys in reclaimed memory, by crashing the
// kvstore after a churn-heavy workload and recovering with and without
// cleanup.
func RunAblCleanup(o Options) error {
	o.fill()
	warm := 10 * time.Second
	if o.Quick {
		warm = 3 * time.Second
	}
	fmt.Fprintf(o.Out, "%-10s %-12s %-14s %-14s\n", "cleanup", "downtime", "live-bytes", "swept")
	for _, cleanup := range []bool{false, true} {
		m := kernel.NewMachine(o.Seed)
		sh, err := ablKVWithCleanup(m, cleanup, o)
		if err != nil {
			return err
		}
		if err := sh.h.RunUntil(m.Clock.Now() + warm); err != nil {
			return err
		}
		// Manufacture garbage: allocations unreachable from the roots.
		hp := sh.h.Runtime().MainHeap()
		for i := 0; i < 20000; i++ {
			hp.Alloc(256)
		}
		sh.arm("R3")
		for i := 0; i < 1000 && sh.h.Stat.PhoenixRestarts == 0; i++ {
			if err := sh.h.Step(); err != nil {
				return err
			}
		}
		newHeap := sh.h.Runtime().MainHeap()
		_, swept := newHeap.LastSweep()
		fmt.Fprintf(o.Out, "%-10v %-12s %-14s %-14s\n",
			cleanup, fmtDur(sh.h.TL.Summarize().Downtime),
			fmtBytes(newHeap.Stats().LiveBytes), fmtBytes(swept))
	}
	fmt.Fprintln(o.Out, "cleanup trades restart latency for reclaimed over-preserved memory (§3.4)")
	return nil
}

func ablKVWithCleanup(m *kernel.Machine, cleanup bool, o Options) (*sysHarness, error) {
	records := uint64(20000)
	if o.Quick {
		records = 4000
	}
	cfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: 2 * time.Second}
	kv := kvstore.New(kvstore.Config{Cleanup: cleanup}, nil)
	gen := workload.NewYCSB(workload.YCSBConfig{
		Seed: o.Seed, Records: records, ReadFrac: 0.9, InsertFrac: 0.1,
		ValueSize: 128, ZipfianKeys: true,
	})
	h := recovery.NewHarness(m, cfg, kv, gen, nil)
	if err := h.Boot(); err != nil {
		return nil, err
	}
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%010d", i)
	}
	kv.Load(keys, 128)
	return &sysHarness{h: h, arm: kv.ArmBug, dmp: func() map[string]string { return kv.Dump() }}, nil
}

// RunAblRegions quantifies instrumentation precision on the IR model: sweep
// every crash point through a mixed transaction stream (updates and
// read-only lookups) and count how often the recovery condition rejects the
// preserved state under (a) the analyzer's placement, which excludes
// read-only code (§3.5: "unsafe regions explicitly exclude read-only
// portions of critical sections"), and (b) naive critical-section-style
// marking that brackets every function touching the preserved data. Both
// are sound; the naive variant needlessly rejects every crash in read
// paths — availability lost to imprecision.
func RunAblRegions(o Options) error {
	o.fill()
	mod := ir.MustParse(analysis.KVModel)
	a := analysis.New(mod)
	if err := a.Run("handler", nil); err != nil {
		return err
	}
	tight, _, err := a.Instrument()
	if err != nil {
		return err
	}
	conservative := criticalSectionInstrument(mod)

	fmt.Fprintf(o.Out, "%-14s %8s %8s %10s\n", "placement", "crashes", "unsafe", "rejected%")
	for _, v := range []struct {
		name string
		mod  *ir.Module
	}{{"analyzer", tight}, {"crit-section", conservative}} {
		crashes, unsafeCnt, err := sweepCrashes(v.mod)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%-14s %8d %8d %9.1f%%\n",
			v.name, crashes, unsafeCnt, 100*float64(unsafeCnt)/float64(crashes))
	}
	fmt.Fprintln(o.Out, "every rejected crash is a fallback to slow default recovery:")
	fmt.Fprintln(o.Out, "precision buys availability without giving up the zero-false-negative guarantee")
	return nil
}

// criticalSectionInstrument models the naive alternative §3.5 argues
// against: every function operating on the shared data — readers included —
// is bracketed whole, as reusing lock-based critical sections would do.
func criticalSectionInstrument(mod *ir.Module) *ir.Module {
	nm := mod.Clone()
	for _, name := range nm.Order {
		f := nm.Funcs[name]
		entry := f.Entry()
		entry.Instrs = append([]ir.Instr{{Op: ir.OpUnsafeEnter}}, entry.Instrs...)
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				if b.Instrs[i].Op == ir.OpRet {
					rest := append([]ir.Instr{{Op: ir.OpUnsafeExit}}, b.Instrs[i:]...)
					b.Instrs = append(b.Instrs[:i], rest...)
					i++
				}
			}
		}
	}
	return nm
}

// sweepCrashes runs a mixed transaction stream — a 90/10 read/update mix,
// like the Redis workload — crashing at every step, and counts unsafe
// verdicts.
func sweepCrashes(mod *ir.Module) (crashes, unsafeCnt int, err error) {
	for crashAt := 1; ; crashAt++ {
		in := ir.NewInterp(mod)
		bucket := in.Global("table") + 256
		in.Store(in.Global("table")+8, bucket)
		for k := int64(1); k <= 2; k++ {
			if _, err := in.Call("handler", k, k*7); err != nil {
				return 0, 0, err
			}
		}
		in.CrashAtStep = in.Steps + crashAt
		// The crash window covers nine read-only transactions and one
		// update, mirroring the workload's time distribution.
		var callErr error
		for r := int64(0); r < 9 && callErr == nil; r++ {
			_, callErr = in.Call("reader", 1+r%2)
		}
		if callErr == nil {
			_, callErr = in.Call("handler", 1, 99)
		}
		if callErr == nil {
			return crashes, unsafeCnt, nil // past the end of the window
		}
		crash, ok := callErr.(*ir.ErrCrash)
		if !ok {
			return 0, 0, callErr
		}
		crashes++
		if !ir.Safe(crash.Stack) {
			unsafeCnt++
		}
		if crashAt > 10000 {
			return 0, 0, fmt.Errorf("abl-regions: sweep did not terminate")
		}
	}
}
