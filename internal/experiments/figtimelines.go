package experiments

import (
	"fmt"
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/metrics"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"

	"phoenix/internal/apps/kvstore"
)

// buildBigKV builds the kvstore with the Figure 1/12 dataset — large enough
// that snapshot unmarshalling dominates builtin recovery, as the paper's
// 6 GB RDB does at full scale.
func buildBigKV(cfg recovery.Config, o Options) (*sysHarness, error) {
	records := uint64(300000)
	if o.Quick {
		records = 50000
	}
	m := kernel.NewMachine(o.Seed)
	kv := kvstore.New(kvstore.Config{Cleanup: true}, nil)
	gen := workload.NewYCSB(workload.YCSBConfig{
		Seed: o.Seed, Records: records, ReadFrac: 0.9, InsertFrac: 0.1,
		ValueSize: 256, ZipfianKeys: true,
	})
	h := recovery.NewHarness(m, cfg, kv, gen, nil)
	if err := h.Boot(); err != nil {
		return nil, err
	}
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%010d", i)
	}
	kv.Load(keys, 256)
	return &sysHarness{h: h, arm: kv.ArmBug, dmp: func() map[string]string { return kv.Dump() }}, nil
}

// runScenario warms a system, fires a scripted bug, and keeps serving until
// the observation window ends, returning the harness for inspection.
func runScenario(system, bug string, cfg recovery.Config, o Options, warm, observe time.Duration) (*sysHarness, error) {
	sh, err := buildSystem(system, cfg, o, nil)
	if err != nil {
		return nil, err
	}
	// Dwell a fraction of a checkpoint interval past the warm phase so the
	// crash does not land suspiciously right after a snapshot.
	if err := sh.h.RunUntil(sh.h.M.Clock.Now() + warm + warm/5); err != nil {
		return nil, err
	}
	sh.arm(bug)
	if err := sh.h.RunUntil(sh.h.M.Clock.Now() + observe); err != nil {
		return nil, err
	}
	return sh, nil
}

// printSeries renders a timeline as (t, rate) pairs at 1 s resolution.
func printSeries(o Options, label string, tl *metrics.Timeline) {
	pts := tl.Series()
	fmt.Fprintf(o.Out, "series %s (t[s] rate[ops/s]):\n", label)
	step := int(time.Second / tl.Bucket)
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		// Aggregate one second.
		var sum float64
		n := 0
		for j := i; j < i+step && j < len(pts); j++ {
			sum += pts[j].Rate
			n++
		}
		fmt.Fprintf(o.Out, "  %6.1f %12.0f\n", pts[i].T.Seconds(), sum/float64(n))
	}
}

// fig1Windows returns the warm/observe windows for the Redis timeline.
func fig1Windows(o Options) (time.Duration, time.Duration) {
	if o.Quick {
		return 3 * time.Second, 10 * time.Second
	}
	return 10 * time.Second, 30 * time.Second
}

// RunFig1 reproduces Figure 1: the Redis #12290 (R4 infinite loop) service
// timeline under builtin RDB recovery — long downtime from snapshot
// unmarshalling, lost updates since the last save, and a depressed
// post-restart hit rate.
func RunFig1(o Options) error {
	o.fill()
	warm, observe := fig1Windows(o)
	cfg := recovery.Config{
		Mode:               recovery.ModeBuiltin,
		CheckpointInterval: warm / 2, // "RDB saved two minutes ago", scaled
		WatchdogTimeout:    2 * time.Second,
	}
	sh, err := buildBigKV(cfg, o)
	if err != nil {
		return err
	}
	if err := sh.h.RunUntil(sh.h.M.Clock.Now() + warm + warm/5); err != nil {
		return err
	}
	beforeCrash := len(sh.dmp())
	sh.arm("R4")
	if err := sh.h.RunRequests(1); err != nil { // the crashing request
		return err
	}
	afterRecovery := len(sh.dmp())
	if err := sh.h.RunUntil(sh.h.M.Clock.Now() + observe); err != nil {
		return err
	}
	sum := sh.h.TL.Summarize()
	fmt.Fprintf(o.Out, "Redis R4 (#12290) under builtin RDB recovery:\n")
	fmt.Fprintf(o.Out, "  lost updates       %d keys (inserted after the last RDB save; §2.1's two-minute gap)\n",
		beforeCrash-afterRecovery)
	fmt.Fprintf(o.Out, "  steady rate        %.0f effective ops/s\n", sh.h.TL.SteadyRate())
	fmt.Fprintf(o.Out, "  downtime           %s (includes %s hang until watchdog)\n",
		fmtDur(sum.Downtime), fmtDur(cfg.WatchdogTimeout))
	fmt.Fprintf(o.Out, "  5s-availability    %.2f of pre-failure\n", sum.FifthSecond)
	if sum.Recovered90 {
		fmt.Fprintf(o.Out, "  90%%-recovery       %s\n", fmtDur(sum.Recovery90))
	} else {
		fmt.Fprintf(o.Out, "  90%%-recovery       not reached in window\n")
	}
	printSeries(o, "builtin", sh.h.TL)
	return nil
}

// RunFig12 reproduces Figure 12: the same R4 scenario across all four
// recovery mechanisms.
func RunFig12(o Options) error {
	o.fill()
	warm, observe := fig1Windows(o)
	fmt.Fprintf(o.Out, "%-10s %-12s %-10s %-12s\n", "mode", "downtime", "5s-avail", "90%-rec")
	for _, mode := range []recovery.Mode{recovery.ModeVanilla, recovery.ModeBuiltin, recovery.ModeCRIU, recovery.ModePhoenix} {
		cfg := recovery.Config{
			Mode:            mode,
			UnsafeRegions:   mode == recovery.ModePhoenix,
			WatchdogTimeout: 2 * time.Second,
		}
		if mode == recovery.ModeBuiltin || mode == recovery.ModeCRIU {
			cfg.CheckpointInterval = warm / 2
		}
		if mode == recovery.ModePhoenix {
			// PHOENIX deployments keep the app's own persistence cadence.
			cfg.CheckpointInterval = warm / 2
		}
		sh, err := buildBigKV(cfg, o)
		if err != nil {
			return err
		}
		if err := sh.h.RunUntil(sh.h.M.Clock.Now() + warm); err != nil {
			return err
		}
		sh.arm("R4")
		if err := sh.h.RunUntil(sh.h.M.Clock.Now() + observe); err != nil {
			return err
		}
		sum := sh.h.TL.Summarize()
		rec := "never"
		if sum.Recovered90 {
			rec = fmtDur(sum.Recovery90)
		}
		fmt.Fprintf(o.Out, "%-10s %-12s %-10.2f %-12s\n", mode, fmtDur(sum.Downtime), sum.FifthSecond, rec)
		printSeries(o, mode.String(), sh.h.TL)
	}
	return nil
}

// RunFig11 reproduces Figure 11: the Varnish #2796 (VA3) deadlock. The
// pool-herder watchdog terminates the stalled worker after 5 s of queue
// inactivity; PHOENIX discards the deadlocked transient state (requests and
// queues) while keeping the cache, so service resumes at a high hit rate.
func RunFig11(o Options) error {
	o.fill()
	warm, observe := fig1Windows(o)
	fmt.Fprintf(o.Out, "%-10s %-12s %-10s %-12s\n", "mode", "downtime", "5s-avail", "90%-rec")
	for _, mode := range []recovery.Mode{recovery.ModeVanilla, recovery.ModeCRIU, recovery.ModePhoenix} {
		cfg := recovery.Config{
			Mode:            mode,
			UnsafeRegions:   mode == recovery.ModePhoenix,
			WatchdogTimeout: 5 * time.Second, // pool-herder quiet time
		}
		if mode == recovery.ModeCRIU {
			cfg.CheckpointInterval = warm / 2
		}
		sh, err := runScenario("webcache-varnish", "VA3", cfg, o, warm, observe)
		if err != nil {
			return err
		}
		sum := sh.h.TL.Summarize()
		rec := "never"
		if sum.Recovered90 {
			rec = fmtDur(sum.Recovery90)
		}
		fmt.Fprintf(o.Out, "%-10s %-12s %-10.2f %-12s\n", mode, fmtDur(sum.Downtime), sum.FifthSecond, rec)
		if mode == recovery.ModePhoenix {
			printSeries(o, "phoenix", sh.h.TL)
		}
	}
	return nil
}

// RunFig13 reproduces Figure 13: the XGBoost training-progress timeline.
// The crash lands mid-training; Builtin reinitialises, loads a stale model
// checkpoint, and recomputes the lost iterations, while PHOENIX resumes
// within the crashed iteration.
func RunFig13(o Options) error {
	o.fill()
	warm, observe := 20*time.Second, 60*time.Second
	if o.Quick {
		warm, observe = 6*time.Second, 20*time.Second
	}
	fmt.Fprintf(o.Out, "%-10s %-10s %-12s %-14s %-12s\n",
		"mode", "at-crash", "downtime", "recomputed", "final-iters")
	for _, mode := range []recovery.Mode{recovery.ModeVanilla, recovery.ModeBuiltin, recovery.ModeCRIU, recovery.ModePhoenix} {
		cfg := recovery.Config{Mode: mode, WatchdogTimeout: 2 * time.Second}
		if mode == recovery.ModeBuiltin || mode == recovery.ModeCRIU {
			cfg.CheckpointInterval = warm / 3
		}
		sh, err := buildSystem("boost", cfg, o, nil)
		if err != nil {
			return err
		}
		if err := sh.h.RunUntil(sh.h.M.Clock.Now() + warm + warm/5); err != nil {
			return err
		}
		atCrash := sh.dmp()["ntrees"]
		sh.arm("X1")
		if err := sh.h.RunUntil(sh.h.M.Clock.Now() + observe); err != nil {
			return err
		}
		sum := sh.h.TL.Summarize()
		final := sh.dmp()["ntrees"]
		// Recomputed iterations show up as non-effective work on the
		// timeline; count them from the app stats via the dump delta.
		fmt.Fprintf(o.Out, "%-10s %-10s %-12s %-14s %-12s\n",
			mode, atCrash, fmtDur(sum.Downtime), recomputedNote(sh), final)
		if mode == recovery.ModePhoenix || mode == recovery.ModeBuiltin {
			printSeries(o, mode.String(), sh.h.TL)
		}
	}
	return nil
}

func recomputedNote(sh *sysHarness) string {
	if sh.recomputed == nil {
		return "-"
	}
	return fmt.Sprintf("%d iters", sh.recomputed())
}
