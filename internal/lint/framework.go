package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Diagnostic is one position-carrying analyzer finding. Like pta.Finding,
// the JSON encoding is part of a campaign report format and must stay
// byte-stable: same tree, byte-identical output.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // repo-relative, forward slashes
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Msg      string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Msg)
}

// Analyzer is one registered static contract check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Repo) []Diagnostic
}

// Analyzers returns the registered contract analyzers in their canonical
// (report) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		purityAnalyzer,
		dirtyBitAnalyzer,
		costChargeAnalyzer,
		determinismAnalyzer,
	}
}

// AnalyzerByName returns the registered analyzer with the given name.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers runs the given analyzers over the repo and returns all
// diagnostics sorted by (File, Line, Col, Analyzer, Msg). The result is
// never nil, so it marshals as [] rather than null.
func RunAnalyzers(r *Repo, analyzers []*Analyzer) []Diagnostic {
	out := []Diagnostic{}
	for _, a := range analyzers {
		out = append(out, a.Run(r)...)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})
}

// BaselineEntry is one accepted exception: a diagnostic the tree is allowed
// to keep, matched line-independently by (analyzer, file, msg) so ordinary
// edits that shift lines do not invalidate it. Why records the one-line
// justification; entries without one should not be merged.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Msg      string `json:"msg"`
	Why      string `json:"why"`
}

// BaselinePath is the repo-relative location of the checked-in baseline.
const BaselinePath = "internal/lint/baseline.json"

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// not an error.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	for i, e := range entries {
		if e.Analyzer == "" || e.File == "" || e.Msg == "" || e.Why == "" {
			return nil, fmt.Errorf("lint: baseline %s: entry %d incomplete (analyzer, file, msg, why all required)", path, i)
		}
	}
	return entries, nil
}

// ApplyBaseline splits diagnostics into those surviving the baseline and
// those an entry suppresses. Each entry may match any number of diagnostics
// (a file-wide exemption for one message is one entry, not one per
// occurrence).
func ApplyBaseline(diags []Diagnostic, base []BaselineEntry) (kept, suppressed []Diagnostic) {
	kept = []Diagnostic{}
	for _, d := range diags {
		matched := false
		for _, e := range base {
			if d.Analyzer == e.Analyzer && d.File == e.File && d.Msg == e.Msg {
				matched = true
				break
			}
		}
		if matched {
			suppressed = append(suppressed, d)
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}
