package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeOf resolves the static callee of a call expression to a *types.Func,
// covering package-level functions (fmt.Sprintf), methods (c.Clock.Advance),
// and locally referenced functions (helper()). Builtins, conversions, and
// calls through function-typed values resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgPathOf returns the import path of the package defining fn ("" for
// builtins and error.Error).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// inPackage reports whether fn is defined in a package whose import path is
// exactly suffix or ends in "/"+suffix. Matching by suffix keeps the
// analyzers valid both on the real module ("phoenix/internal/mem") and on
// the self-contained testdata module mirroring the same layout.
func inPackage(fn *types.Func, suffix string) bool {
	p := pkgPathOf(fn)
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// receiverNamed returns the name of fn's receiver's base named type, or ""
// for package-level functions.
func receiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isMethodOf reports whether fn is the named method on the named receiver
// type defined in a package matching pkgSuffix.
func isMethodOf(fn *types.Func, pkgSuffix, recv, name string) bool {
	return fn != nil && fn.Name() == name && receiverNamed(fn) == recv && inPackage(fn, pkgSuffix)
}

// isPkgFunc reports whether fn is the named package-level function of the
// package with the exact import path pkg (used for stdlib: "time",
// "math/rand").
func isPkgFunc(fn *types.Func, pkg, name string) bool {
	if fn == nil || fn.Name() != name || pkgPathOf(fn) != pkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// rootIdent unwraps selector/index/slice/star/paren chains to the base
// identifier: kv.stats[i].n → kv. Expressions rooted at a call or literal
// return nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isPackageLevel reports whether obj is a package-scope variable.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
