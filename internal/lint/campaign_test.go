package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoCampaignClean is the static-contract gate over the real module:
// every analyzer runs on the enclosing repository, and any finding not
// covered by the checked-in baseline fails the build. New accepted
// exceptions belong in baseline.json with a one-line justification.
func TestRepoCampaignClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check; skipped in -short")
	}
	root, err := FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Campaign(root)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		for _, d := range rep.Findings {
			t.Errorf("finding beyond baseline: %s", d)
		}
	}
	// The baseline must stay live: an entry that no longer suppresses
	// anything is stale and should be deleted, not carried.
	base, err := LoadBaseline(filepath.Join(root, filepath.FromSlash(BaselinePath)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range base {
		matched := false
		for _, d := range rep.Suppressed {
			if d.Analyzer == e.Analyzer && d.File == e.File && d.Msg == e.Msg {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("stale baseline entry (suppresses nothing): %s / %s / %q", e.Analyzer, e.File, e.Msg)
		}
	}
}
