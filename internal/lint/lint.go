// Package lint implements the repo's determinism lint: a stdlib-only
// (go/parser + go/ast) source check over the deterministic-simulation
// packages, flagging constructs that would break same-seed byte-identical
// reruns:
//
//   - time.Now() — wall-clock reads; deterministic code must ride the
//     simulated clocks;
//   - package-level math/rand calls (rand.Intn, rand.Int63, ...) — the
//     global generator is shared mutable state; deterministic code must
//     thread a rand.New(rand.NewSource(seed)) instance (rand.New and
//     rand.NewSource themselves are fine);
//   - ranging over a map inside a function that produces JSON (calls
//     json.Marshal or is itself a MarshalJSON method) — map iteration order
//     is randomized, so any JSON assembled from it is not byte-stable.
//
// The check is a test-time gate (see lint_test.go), not a Vet-style
// analysis pass: it runs over non-test files only, since tests may
// legitimately use wall-clock time for timeouts.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Issue is one determinism violation.
type Issue struct {
	File string
	Line int
	Rule string
	Msg  string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", i.File, i.Line, i.Rule, i.Msg)
}

// CheckDir lints every non-test .go file under dir, descending into nested
// packages but skipping testdata (fixture mutants exist to violate the
// rules), vendor, and hidden directories. Issues come back sorted by
// (file, line).
func CheckDir(dir string) ([]Issue, error) {
	var issues []Issue
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		fi, err := checkFile(path)
		if err != nil {
			return err
		}
		issues = append(issues, fi...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(issues, func(i, j int) bool {
		if issues[i].File != issues[j].File {
			return issues[i].File < issues[j].File
		}
		return issues[i].Line < issues[j].Line
	})
	return issues, nil
}

// randDeterministic lists math/rand selectors that are construction, not
// draws from the shared global generator.
var randDeterministic = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func checkFile(path string) ([]Issue, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	// Only flag selector uses when the package is actually imported under
	// the expected name (no aliasing tricks in this repo, but be precise).
	imports := map[string]string{} // local name → import path
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		name := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = p
	}
	var issues []Issue
	add := func(pos token.Pos, rule, msg string) {
		issues = append(issues, Issue{File: path, Line: fset.Position(pos).Line, Rule: rule, Msg: msg})
	}
	// pkgCall matches a call of the form pkg.Sel(...) against an import path.
	pkgCall := func(call *ast.CallExpr, importPath string) (string, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Obj != nil { // shadowed by a local binding
			return "", false
		}
		if imports[id.Name] != importPath {
			return "", false
		}
		return sel.Sel.Name, true
	}

	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		// Does this function produce JSON? Then map iteration inside it is
		// suspect.
		jsonProducer := fn.Name.Name == "MarshalJSON"
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if s, ok := pkgCall(call, "encoding/json"); ok && (s == "Marshal" || s == "MarshalIndent") {
					jsonProducer = true
				}
			}
			return true
		})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if s, ok := pkgCall(node, "time"); ok && s == "Now" {
					add(node.Pos(), "wallclock", "time.Now in deterministic code; use the simulated clock")
				}
				if s, ok := pkgCall(node, "math/rand"); ok && !randDeterministic[s] {
					add(node.Pos(), "globalrand",
						fmt.Sprintf("package-level rand.%s draws from shared global state; thread a seeded *rand.Rand", s))
				}
			case *ast.RangeStmt:
				if jsonProducer && rangesOverMap(node) {
					add(node.Pos(), "maporder",
						"map iteration in a JSON-producing function; iterate sorted keys for byte-stable output")
				}
			}
			return true
		})
	}
	return issues, nil
}

// rangesOverMap heuristically detects `for k, v := range m` over a map: a
// two-value range whose expression is not an obvious slice/array/channel
// construct. Without type information the tell is the value identifier
// pattern — we flag only ranges whose expression is a plain identifier or
// selector with a map-suggesting declared type nearby. To stay stdlib-only
// and zero-config the check is syntactic: a range with BOTH key and value
// bound, where the key is not the conventional index name (i, j, n, idx),
// which in this codebase separates map walks from slice walks.
func rangesOverMap(r *ast.RangeStmt) bool {
	if r.Key == nil || r.Value == nil {
		return false
	}
	k, ok := r.Key.(*ast.Ident)
	if !ok {
		return false
	}
	switch k.Name {
	case "i", "j", "n", "idx", "_":
		return false
	}
	return true
}
