package lint

import (
	"bytes"
	"sync"
	"testing"
)

// fixtureRepo loads the self-contained fixture module under testdata/src
// once per test binary. The fixture mirrors the real layout (internal/mem,
// internal/kernel, ...) so the suffix-matched package scopes apply to it
// exactly as they do to the real module.
var fixtureRepo = sync.OnceValues(func() (*Repo, error) {
	return LoadRepo("testdata/src")
})

// golden is the full expected output of every analyzer over the fixture:
// one diagnostic per planted mutant, at its exact position, and nothing for
// the clean counterparts planted beside them.
var golden = []Diagnostic{
	{"determinism", "internal/det/det.go", 14, 8, "time.Now in deterministic code; use the simulated clock"},
	{"determinism", "internal/det/det.go", 15, 20, "time.Since reads the wall clock; use the simulated clock"},
	{"determinism", "internal/det/det.go", 20, 9, "package-level rand.Intn draws from shared global state; thread a seeded *rand.Rand"},
	{"determinism", "internal/det/det.go", 25, 2, "rand.Shuffle permutes via the unseeded global generator; use a seeded *rand.Rand"},
	{"determinism", "internal/det/det.go", 37, 2, "key+value map iteration in a JSON-producing function; iterate sorted keys for byte-stable output"},
	{"cost-charging", "internal/kernel/kernel.go", 24, 1, "exported BadSweep does per-page work without charging a costmodel term"},
	{"cost-charging", "internal/kernel/kernel.go", 30, 1, "exported CondSweep does per-page work but charges only conditionally; charge on every path"},
	{"cost-charging", "internal/kernel/kernel.go", 52, 1, "exported BadTransitive does per-page work without charging a costmodel term"},
	{"dirty-bit", "internal/mem/mem.go", 69, 2, "PokeRaw writes into a frame-backed buffer without materialize/dirty-marking evidence; delta checksums will skip the change"},
	{"dirty-bit", "internal/mem/mem.go", 76, 2, "BlastCopy copies into a frame-backed buffer without materialize/dirty-marking evidence; delta checksums will skip the change"},
	{"dirty-bit", "internal/mem/mem.go", 82, 2, "SwapData replaces a frame's Data buffer without materialize/dirty-marking evidence; delta checksums will skip the change"},
	{"snapshot-purity", "internal/snapreader/snapreader.go", 19, 3, "reader closure of GlobalWriter.OpenSnapshotReader writes package-level state served; snapshot readers must be pure"},
	{"snapshot-purity", "internal/snapreader/snapreader.go", 31, 3, "reader closure of ReceiverWriter.OpenSnapshotReader writes captured variable r; snapshot readers must be pure"},
	{"snapshot-purity", "internal/snapreader/snapreader.go", 42, 3, "reader closure of CaptureWriter.OpenSnapshotReader writes captured variable count; snapshot readers must be pure"},
	{"snapshot-purity", "internal/snapreader/snapreader.go", 55, 10, "reader closure of Allocator.OpenSnapshotReader calls heap.Alloc; snapshot readers must not allocate simulated memory"},
	{"snapshot-purity", "internal/snapreader/snapreader.go", 73, 48, "timeOf (reachable from ClockReader.OpenSnapshotReader's reader closure) calls Clock.Now; snapshot readers must not touch the clock"},
	{"snapshot-purity", "internal/snapreader/snapreader.go", 80, 3, "reader closure of ViewMutator.OpenSnapshotReader calls AddressSpace.WriteU8; the frozen view must not be mutated"},
}

// TestGoldenDiagnostics checks each analyzer against its slice of the golden
// table: every planted mutant flagged at its exact position, nothing else.
func TestGoldenDiagnostics(t *testing.T) {
	repo, err := fixtureRepo()
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			var want []Diagnostic
			for _, d := range golden {
				if d.Analyzer == a.Name {
					want = append(want, d)
				}
			}
			got := RunAnalyzers(repo, []*Analyzer{a})
			if len(got) != len(want) {
				t.Errorf("got %d diagnostics, want %d", len(got), len(want))
			}
			for i := 0; i < len(got) || i < len(want); i++ {
				switch {
				case i >= len(want):
					t.Errorf("unexpected: %s", got[i])
				case i >= len(got):
					t.Errorf("missing: %s", want[i])
				case got[i] != want[i]:
					t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGoldenCombined runs all analyzers together and checks the global
// (File, Line, Col, Analyzer, Msg) sort order against the full table.
func TestGoldenCombined(t *testing.T) {
	repo, err := fixtureRepo()
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	want := append([]Diagnostic(nil), golden...)
	sortDiagnostics(want)
	got := RunAnalyzers(repo, Analyzers())
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}

// TestAnalyzerRegistry pins the registration surface: canonical order and
// name lookup.
func TestAnalyzerRegistry(t *testing.T) {
	names := []string{}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s: missing Doc or Run", a.Name)
		}
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) does not round-trip", a.Name)
		}
	}
	want := []string{"snapshot-purity", "dirty-bit", "cost-charging", "determinism"}
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered %v, want %v", names, want)
		}
	}
	if AnalyzerByName("no-such") != nil {
		t.Error("AnalyzerByName on unknown name should return nil")
	}
}

// TestBaselineSuppression exercises the baseline path on fixture findings:
// one entry suppresses exactly its (analyzer, file, msg) matches,
// line-independently, and leaves the rest.
func TestBaselineSuppression(t *testing.T) {
	repo, err := fixtureRepo()
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	all := RunAnalyzers(repo, Analyzers())
	base := []BaselineEntry{{
		Analyzer: "cost-charging",
		File:     "internal/kernel/kernel.go",
		Msg:      "exported BadSweep does per-page work without charging a costmodel term",
		Why:      "test entry",
	}}
	kept, suppressed := ApplyBaseline(all, base)
	if len(suppressed) != 1 || len(kept) != len(all)-1 {
		t.Fatalf("suppressed %d kept %d, want 1 and %d", len(suppressed), len(kept), len(all)-1)
	}
	if suppressed[0].Line != 24 {
		t.Errorf("suppressed wrong diagnostic: %s", suppressed[0])
	}
	for _, d := range kept {
		if d.Msg == base[0].Msg {
			t.Errorf("baseline failed to suppress: %s", d)
		}
	}
}

// TestReportByteIdentity runs the full fixture campaign twice and requires
// byte-identical JSON — the same determinism bar CI holds the real module's
// lint campaign to.
func TestReportByteIdentity(t *testing.T) {
	run := func() []byte {
		rep, err := Campaign("testdata/src")
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("campaign JSON not byte-identical across runs:\n%s\n--- vs ---\n%s", a, b)
	}
	rep, err := Campaign("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Error("fixture campaign must not be clean: it exists to be full of mutants")
	}
	if len(rep.Findings) != len(golden) {
		t.Errorf("fixture campaign found %d, want %d", len(rep.Findings), len(golden))
	}
}
