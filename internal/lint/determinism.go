package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The determinism analyzer: the repo-wide, type-resolved generalization of
// the original syntactic checker in lint.go. Same-seed byte-identical reruns
// are the foundation every campaign gate stands on, so production code must
// not:
//
//   - read the wall clock (time.Now, time.Since) — simulated components ride
//     simclock, and even host-side tooling must keep timing out of
//     deterministic report bytes;
//   - draw from math/rand's shared global generator (rand.Intn,
//     rand.Shuffle, ...) — the global source is process-wide mutable state
//     seeded behind the program's back; deterministic code threads a
//     rand.New(rand.NewSource(seed)). Methods on a threaded *rand.Rand are
//     fine, as are the constructors rand.New/NewSource/NewZipf;
//   - assemble JSON from a key+value map range — iteration order is
//     randomized, so any marshal-bound bytes built that way differ run to
//     run. Key-only ranges stay legal: the sorted-keys idiom collects keys
//     first, sorts, then indexes.
//
// Resolution is through go/types, so aliased imports, shadowed package
// names, and method-vs-function confusion (r.Intn on a threaded *rand.Rand
// vs package-level rand.Intn) are decided exactly rather than by syntax.
var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbids wall-clock reads, global math/rand draws, and map-ordered JSON assembly in production code",
	Run:  runDeterminism,
}

// randDeterministicFuncs lists math/rand package-level functions that are
// construction rather than draws from the global generator.
var randDeterministicFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range r.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, determinismInFunc(r, pkg, fd)...)
			}
		}
	}
	return out
}

func determinismInFunc(r *Repo, pkg *Pkg, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	add := func(n ast.Node, msg string) {
		file, line, col := r.Position(n.Pos())
		out = append(out, Diagnostic{Analyzer: "determinism", File: file, Line: line, Col: col, Msg: msg})
	}

	// A function is JSON-producing when it is a MarshalJSON method or calls
	// encoding/json's Marshal/MarshalIndent/(*Encoder).Encode anywhere.
	jsonProducer := fd.Name.Name == "MarshalJSON" && fd.Recv != nil
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		if fn == nil || pkgPathOf(fn) != "encoding/json" {
			return true
		}
		switch fn.Name() {
		case "Marshal", "MarshalIndent", "Encode":
			jsonProducer = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			fn := calleeOf(pkg.Info, node)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "time", "Now"):
				add(node, "time.Now in deterministic code; use the simulated clock")
			case isPkgFunc(fn, "time", "Since"):
				add(node, "time.Since reads the wall clock; use the simulated clock")
			case pkgPathOf(fn) == "math/rand" && fn.Name() == "Shuffle" && isGlobalRandCall(fn):
				add(node, "rand.Shuffle permutes via the unseeded global generator; use a seeded *rand.Rand")
			case pkgPathOf(fn) == "math/rand" && isGlobalRandCall(fn) && !randDeterministicFuncs[fn.Name()]:
				add(node, fmt.Sprintf("package-level rand.%s draws from shared global state; thread a seeded *rand.Rand", fn.Name()))
			}
		case *ast.RangeStmt:
			if jsonProducer && node.Key != nil && node.Value != nil && rangesMapType(pkg.Info, node.X) {
				add(node, "key+value map iteration in a JSON-producing function; iterate sorted keys for byte-stable output")
			}
		}
		return true
	})
	return out
}

// isGlobalRandCall reports whether fn is a math/rand package-level function
// (as opposed to a method on a threaded *rand.Rand, which is deterministic
// given its seed).
func isGlobalRandCall(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// rangesMapType reports whether e has map type.
func rangesMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
