package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// The cost-charging analyzer enforces the simulated-time discipline that
// keeps the paper's latency numbers honest: an exported kernel/recovery
// operation that does per-page work (page-table moves, page copies,
// checksum walks, dirty scans) must advance the simulated clock by a
// costmodel term — and must do so unconditionally, not only on some branch.
// An uncharged bulk operation silently makes preservation look free; a
// conditionally charged one skews the distribution exactly on the paths
// experiments care about.
//
// Scope: exported functions and methods of packages named kernel and
// recovery (the layers that own a clock; package mem is the substrate and is
// charged by these callers — see DESIGN.md). An operation is per-page when
// its body — or any same-package unexported callee, transitively — calls one
// of the mem bulk-page APIs. Charge evidence is a call to Clock.Advance or
// Ctx.Charge/ChargeBytes; it satisfies the contract when some function on
// the per-page path makes it as a top-level body statement (early error
// returns before it are fine: an operation that did not happen costs
// nothing).
var costChargeAnalyzer = &Analyzer{
	Name: "cost-charging",
	Doc:  "exported kernel/recovery ops doing per-page work must charge a costmodel term on every path",
	Run:  runCostCharge,
}

// bulkPageOps is the per-page work surface of package mem: AddressSpace
// frame walks and transfers, snapshot-store commits, and rewind-domain
// brackets — anything whose cost scales with pages touched.
var bulkPageOps = map[string]bool{
	"MovePages": true, "UnmovePages": true, "CopyPages": true, "Clone": true,
	"PageChecksum": true, "ClearDirty": true, "ClearAllDirty": true,
	"DirtySet": true, "DirtySetIn": true, "DirtyPages": true, "DirtyPagesIn": true,
	"ResidentPages": true, "BeginDomain": true, "CommitDomain": true,
	"DiscardDomain": true, "Commit": true, "CheckFrozen": true,
}

func runCostCharge(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range r.Pkgs {
		if name := pkg.Types.Name(); name != "kernel" && name != "recovery" {
			continue
		}
		out = append(out, costChargeInPkg(r, pkg)...)
	}
	return out
}

// costFacts is the per-function summary the package-level fixpoint builds on.
type costFacts struct {
	decl      *ast.FuncDecl
	perPage   bool // calls a mem bulk-page API directly
	chargeTop bool // charges as a top-level body statement
	chargeAny bool // charges anywhere
	samePkg   []*types.Func
}

func costChargeInPkg(r *Repo, pkg *Pkg) []Diagnostic {
	info := pkg.Info

	facts := map[*types.Func]*costFacts{}
	var order []*types.Func
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[fn] = summarizeCost(pkg, fd)
			order = append(order, fn)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].FullName() < order[j].FullName() })

	var out []Diagnostic
	for _, fn := range order {
		f := facts[fn]
		if !fn.Exported() {
			continue
		}
		perPage, chargeTop, chargeAny := walkCost(fn, facts, map[*types.Func]bool{})
		if !perPage || chargeTop {
			continue
		}
		file, line, col := r.Position(f.decl.Pos())
		msg := fmt.Sprintf("exported %s does per-page work without charging a costmodel term", fn.Name())
		if chargeAny {
			msg = fmt.Sprintf("exported %s does per-page work but charges only conditionally; charge on every path", fn.Name())
		}
		out = append(out, Diagnostic{Analyzer: "cost-charging", File: file, Line: line, Col: col, Msg: msg})
	}
	return out
}

// walkCost folds the per-page and charge facts over fn and its same-package
// callee closure.
func walkCost(fn *types.Func, facts map[*types.Func]*costFacts, visited map[*types.Func]bool) (perPage, chargeTop, chargeAny bool) {
	if visited[fn] {
		return false, false, false
	}
	visited[fn] = true
	f := facts[fn]
	if f == nil {
		return false, false, false
	}
	perPage, chargeTop, chargeAny = f.perPage, f.chargeTop, f.chargeAny
	for _, callee := range f.samePkg {
		p, t, a := walkCost(callee, facts, visited)
		perPage = perPage || p
		chargeTop = chargeTop || t
		chargeAny = chargeAny || a
	}
	return perPage, chargeTop, chargeAny
}

// summarizeCost extracts one function's local facts.
func summarizeCost(pkg *Pkg, fd *ast.FuncDecl) *costFacts {
	info := pkg.Info
	f := &costFacts{decl: fd}
	seen := map[*types.Func]bool{}

	// Top-level body statements (plus defers declared there) are the
	// "unconditional" charge positions.
	for _, stmt := range fd.Body.List {
		s := stmt
		if d, ok := s.(*ast.DeferStmt); ok {
			if isChargeCall(info, d.Call) {
				f.chargeTop = true
			}
			continue
		}
		ast.Inspect(s, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
				return false // nested control flow: no longer unconditional
			case *ast.CallExpr:
				if isChargeCall(info, n.(*ast.CallExpr)) {
					f.chargeTop = true
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isChargeCall(info, call) {
			f.chargeAny = true
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if inPackage(fn, "internal/mem") && bulkPageOps[fn.Name()] {
			f.perPage = true
			return true
		}
		if fn.Pkg() == pkg.Types && !fn.Exported() && !seen[fn] {
			seen[fn] = true
			f.samePkg = append(f.samePkg, fn)
		}
		return true
	})
	sort.Slice(f.samePkg, func(i, j int) bool { return f.samePkg[i].FullName() < f.samePkg[j].FullName() })
	return f
}

// isChargeCall reports whether call advances the simulated clock:
// (*simclock.Clock).Advance or simds.(*Ctx).Charge/ChargeBytes.
func isChargeCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Advance" && receiverNamed(fn) == "Clock" && inPackage(fn, "internal/simclock") {
		return true
	}
	return isMethodOf(fn, "internal/simds", "Ctx", "Charge") || isMethodOf(fn, "internal/simds", "Ctx", "ChargeBytes")
}
