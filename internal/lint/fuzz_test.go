package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// errImporter rejects every import; combined with a tolerant Error hook the
// type checker still produces a (partial) package, which is exactly the
// degraded input the walker must survive.
type errImporter struct{}

func (errImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("fuzz: no imports")
}

// fuzzRepo type-checks one source string tolerantly into a single-package
// Repo. Parse failures and fully unusable inputs return ok=false.
func fuzzRepo(src string) (*Repo, bool) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
	if err != nil {
		return nil, false
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Error: func(error) {}, Importer: errImporter{}, FakeImportC: true}
	tp, _ := conf.Check("fuzz", fset, []*ast.File{f}, info)
	if tp == nil {
		return nil, false
	}
	pkg := &Pkg{Path: "fuzz", Dir: ".", Files: []*ast.File{f}, Types: tp, Info: info}
	repo := &Repo{Root: "/", Module: "fuzz", Fset: fset, Pkgs: []*Pkg{pkg}, funcDecls: map[*types.Func]*FuncSrc{}}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
			repo.funcDecls[fn] = &FuncSrc{Decl: fd, Pkg: pkg}
		}
	}
	return repo, true
}

// FuzzPurityWalker throws arbitrary (often ill-typed) Go source at the purity
// reachability walker. The property is robustness, not precision: the walker
// must terminate without panicking on any parseable input — including call
// cycles, methods without bodies, shadowed receivers, and type errors that
// leave identifiers unresolved.
func FuzzPurityWalker(f *testing.F) {
	f.Add("package p\n")
	f.Add(`package p
type T struct{ n int }
func (t *T) OpenSnapshotReader(v int) func(uint64) bool {
	return func(a uint64) bool { t.n++; return a > 0 }
}
`)
	f.Add(`package p
var g int
type T struct{}
func (T) OpenSnapshotReader(v int) func(uint64) bool {
	return func(a uint64) bool { g++; return loop(a) > 0 }
}
func loop(a uint64) uint64 { return loop(a) }
`)
	f.Add(`package p
type T struct{}
func (T) OpenSnapshotReader() func() bool {
	return (func() bool)(nil)
}
func OpenSnapshotReader() {}
`)
	f.Fuzz(func(t *testing.T, src string) {
		repo, ok := fuzzRepo(src)
		if !ok {
			return
		}
		// The walker must return (no panic, no unbounded recursion); the
		// diagnostics themselves are unconstrained on arbitrary input.
		_ = runPurity(repo)
	})
}
