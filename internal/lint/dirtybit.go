package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The dirty-bit soundness analyzer guards the invariant that makes
// incremental preservation's delta checksums trustworthy: every content
// mutation of a frame-backed buffer must leave tracking evidence — the
// soft-dirty bit and the write-generation stamp — or the preserve machinery
// will checksum-skip a page whose bytes changed. At runtime the invariant is
// only audited probabilistically (AuditIncremental shadow checksums); this
// analyzer checks the write paths themselves.
//
// Scope: packages named mem and kernel (the only owners of Frame buffers).
// A hazard is a statement that can change bytes reachable from a Frame's
// Data field:
//
//   - an indexed assignment whose base is f.Data (or a local derived from it
//     in the same function);
//   - copy() with such a buffer as destination;
//   - assignment to the Data field itself.
//
// A function containing hazards must also contain sanction evidence that it
// participates in tracking: a call to the materialize/write/stamp funnels,
// an explicit assignment to a Dirty or Gen field, or construction of a
// Frame composite literal with an explicit Dirty field (the snapshot paths
// that copy tracking state wholesale). Evidence is per-function — the
// funnels themselves carry their own evidence, so the rule bottoms out.
//
// Caveat (documented in DESIGN.md): the derived-buffer taint is local and
// syntactic; a Data slice smuggled through a field, channel, or call
// argument is not tracked. AuditIncremental remains the dynamic backstop.
var dirtyBitAnalyzer = &Analyzer{
	Name: "dirty-bit",
	Doc:  "frame-backed buffer writes in mem/kernel must flow through materialize/dirty-marking paths",
	Run:  runDirtyBit,
}

func runDirtyBit(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range r.Pkgs {
		if name := pkg.Types.Name(); name != "mem" && name != "kernel" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, dirtyBitInFunc(r, pkg, fd)...)
			}
		}
	}
	return out
}

// isFrameType reports whether t (after pointer deref) is a named struct
// "Frame" with Data []byte and Dirty bool fields — structural detection, so
// the check works on any package laying out frames this way.
func isFrameType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Frame" {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasData, hasDirty bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "Data":
			if s, ok := f.Type().(*types.Slice); ok {
				if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
					hasData = true
				}
			}
		case "Dirty":
			if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.Bool {
				hasDirty = true
			}
		}
	}
	return hasData && hasDirty
}

// frameDataSel reports whether e is a selector f.Data (possibly sliced or
// indexed) on a Frame-typed base, returning the selector when so.
func frameDataSel(info *types.Info, e ast.Expr) *ast.SelectorExpr {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name == "Data" && isFrameType(info.TypeOf(x.X)) {
			return x
		}
	case *ast.SliceExpr:
		return frameDataSel(info, x.X)
	case *ast.IndexExpr:
		return frameDataSel(info, x.X)
	}
	return nil
}

func dirtyBitInFunc(r *Repo, pkg *Pkg, fd *ast.FuncDecl) []Diagnostic {
	info := pkg.Info

	// Pass 1: local taint (vars bound to a Frame's Data buffer) and sanction
	// evidence.
	tainted := map[types.Object]bool{}
	evidence := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) == len(node.Rhs) {
				for i, lhs := range node.Lhs {
					if frameDataSel(info, node.Rhs[i]) == nil {
						continue
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := objOf(info, id); obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
			// Explicit tracking-state management counts as evidence.
			for _, lhs := range node.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if (sel.Sel.Name == "Dirty" || sel.Sel.Name == "Gen") && isFrameType(info.TypeOf(sel.X)) {
						evidence = true
					}
				}
			}
		case *ast.CompositeLit:
			if isFrameType(info.TypeOf(node)) {
				for _, el := range node.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "Dirty" {
							evidence = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeOf(info, node); fn != nil && fn.Pkg() == pkg.Types {
				switch fn.Name() {
				case "materialize", "write", "stamp":
					evidence = true
				}
			}
		}
		return true
	})

	// Pass 2: hazards.
	var out []Diagnostic
	add := func(pos token.Pos, msg string) {
		file, line, col := r.Position(pos)
		out = append(out, Diagnostic{Analyzer: "dirty-bit", File: file, Line: line, Col: col, Msg: msg})
	}
	isFrameBuf := func(e ast.Expr) bool {
		if frameDataSel(info, e) != nil {
			return true
		}
		if id := rootIdent(ast.Unparen(e)); id != nil {
			if obj := objOf(info, id); obj != nil && tainted[obj] {
				return true
			}
		}
		return false
	}
	hazard := func(pos token.Pos, what string) {
		if evidence {
			return
		}
		add(pos, fmt.Sprintf("%s %s without materialize/dirty-marking evidence; delta checksums will skip the change", fd.Name.Name, what))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				switch t := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					if isFrameBuf(t.X) {
						hazard(lhs.Pos(), "writes into a frame-backed buffer")
					}
				case *ast.SelectorExpr:
					if t.Sel.Name == "Data" && isFrameType(info.TypeOf(t.X)) {
						hazard(lhs.Pos(), "replaces a frame's Data buffer")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "copy" && len(node.Args) == 2 {
					if isFrameBuf(node.Args[0]) {
						hazard(node.Pos(), "copies into a frame-backed buffer")
					}
				}
			}
		}
		return true
	})
	return out
}
