// Package snapreader plants one snapshot-purity violation per receiver type,
// each behind an OpenSnapshotReader method, plus one fully clean reader.
package snapreader

import (
	"fixture/internal/heap"
	"fixture/internal/mem"
	"fixture/internal/simclock"
	"fixture/internal/simds"
)

var served uint64

// GlobalWriter's reader bumps a package-level counter.
type GlobalWriter struct{}

func (GlobalWriter) OpenSnapshotReader(view *mem.AddressSpace) func(uint64) bool {
	return func(addr uint64) bool {
		served++
		return view.DirtyPages() >= 0
	}
}

// ReceiverWriter's reader mutates state on the structure that built it.
type ReceiverWriter struct {
	hits []uint64
}

func (r *ReceiverWriter) OpenSnapshotReader(view *mem.AddressSpace) func(uint64) bool {
	return func(addr uint64) bool {
		r.hits = append(r.hits, addr)
		return view.DirtyPages() >= 0
	}
}

// CaptureWriter's reader mutates a local captured from the method body.
type CaptureWriter struct{}

func (CaptureWriter) OpenSnapshotReader(view *mem.AddressSpace) func(uint64) bool {
	count := 0
	return func(addr uint64) bool {
		count++
		return count > 0
	}
}

// Allocator's reader allocates simulated memory.
type Allocator struct {
	H *heap.Heap
}

func (a *Allocator) OpenSnapshotReader(view *mem.AddressSpace) func(uint64) bool {
	h := a.H
	return func(addr uint64) bool {
		return h.Alloc(8) != 0
	}
}

// ClockReader's reader reaches the clock through a helper two calls deep.
type ClockReader struct {
	C *simclock.Clock
}

func (c *ClockReader) OpenSnapshotReader(view *mem.AddressSpace) func(uint64) bool {
	clk := c.C
	return func(addr uint64) bool {
		return stampOf(clk) > addr
	}
}

func stampOf(c *simclock.Clock) uint64 { return timeOf(c) }

func timeOf(c *simclock.Clock) uint64 { return c.Now() }

// ViewMutator's reader writes into the frozen view.
type ViewMutator struct{}

func (ViewMutator) OpenSnapshotReader(view *mem.AddressSpace) func(uint64) bool {
	return func(addr uint64) bool {
		view.WriteU8(addr, 1)
		return true
	}
}

// Clean's reader only reads the view and charges through the whitelisted
// nil-Clock-guarded context; the analyzer must stay silent on it.
type Clean struct {
	Ctx *simds.Ctx
}

func (c *Clean) OpenSnapshotReader(view *mem.AddressSpace) func(uint64) bool {
	ctx := c.Ctx
	limit := view.DirtyPages()
	return func(addr uint64) bool {
		ctx.Charge(1)
		local := addr % mem.PageSize
		return int(local) <= limit
	}
}
