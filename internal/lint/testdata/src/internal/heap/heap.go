// Package heap is the fixture mirror of the simulated allocator: just enough
// surface for the purity analyzer's Alloc/Free detection.
package heap

type Heap struct {
	next uint64
}

func (h *Heap) Alloc(n uint64) uint64 {
	h.next += n
	return h.next - n
}

func (h *Heap) Free(addr uint64) {}
