// Package mem is the fixture mirror of the frame-backed address space, laid
// out so each dirty-bit hazard class appears exactly once, with a clean
// funnel-using counterpart beside it.
package mem

const PageSize = 64

type Frame struct {
	Data  []byte
	Dirty bool
	Gen   uint64
}

type AddressSpace struct {
	frames map[uint64]*Frame
	gen    uint64
}

func New() *AddressSpace {
	return &AddressSpace{frames: map[uint64]*Frame{}}
}

// materialize is the tracking funnel: every legal write path goes through it.
func (a *AddressSpace) materialize(page uint64) *Frame {
	f := a.frames[page]
	if f == nil {
		f = &Frame{Data: make([]byte, PageSize)}
		a.frames[page] = f
	}
	f.Dirty = true
	return f
}

// write stamps the generation after materializing.
func (a *AddressSpace) write(addr uint64, b byte) {
	f := a.materialize(addr / PageSize)
	a.gen++
	f.Gen = a.gen
	f.Data[addr%PageSize] = b
}

// WriteU8 is the clean exported write path.
func (a *AddressSpace) WriteU8(addr uint64, b byte) { a.write(addr, b) }

// DirtyPages counts dirty frames (a bulk per-page walk).
func (a *AddressSpace) DirtyPages() int {
	n := 0
	for _, f := range a.frames {
		if f.Dirty {
			n++
		}
	}
	return n
}

// CopyPages is a bulk per-page transfer; the Frame literal with an explicit
// Dirty field is its tracking evidence.
func (a *AddressSpace) CopyPages(from *AddressSpace) {
	for page, f := range from.frames {
		nf := &Frame{Data: append([]byte(nil), f.Data...), Dirty: true, Gen: f.Gen}
		a.frames[page] = nf
	}
}

// PokeRaw is the indexed-write mutant: it mutates frame bytes with no
// materialize/dirty evidence anywhere in the function.
func (a *AddressSpace) PokeRaw(addr uint64, b byte) {
	f := a.frames[addr/PageSize]
	f.Data[addr%PageSize] = b
}

// BlastCopy is the copy-destination mutant, via a locally derived buffer.
func (a *AddressSpace) BlastCopy(page uint64, src []byte) {
	f := a.frames[page]
	d := f.Data
	copy(d, src)
}

// SwapData is the buffer-replacement mutant: the frame keeps its stale Gen.
func (a *AddressSpace) SwapData(page uint64, buf []byte) {
	f := a.frames[page]
	f.Data = buf
}
