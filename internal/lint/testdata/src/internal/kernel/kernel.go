// Package kernel is the fixture mirror of the machine layer, laid out so
// each cost-charging outcome appears exactly once: charged, uncharged,
// conditionally charged, and charged through an unexported callee.
package kernel

import (
	"fixture/internal/mem"
	"fixture/internal/simclock"
)

type Machine struct {
	Clock *simclock.Clock
	AS    *mem.AddressSpace
}

// GoodSweep does per-page work and charges unconditionally at top level.
func (m *Machine) GoodSweep() int {
	n := m.AS.DirtyPages()
	m.Clock.Advance(uint64(n))
	return n
}

// BadSweep is the uncharged mutant: per-page work, no charge anywhere.
func (m *Machine) BadSweep() int {
	return m.AS.DirtyPages()
}

// CondSweep is the conditional-charge mutant: the charge exists but only on
// one branch.
func (m *Machine) CondSweep(charge bool) int {
	n := m.AS.DirtyPages()
	if charge {
		m.Clock.Advance(uint64(n))
	}
	return n
}

// GoodTransitive reaches per-page work and the top-level charge through the
// same unexported callee; the transitive fold must see both.
func (m *Machine) GoodTransitive() int {
	return m.sweepAndCharge()
}

func (m *Machine) sweepAndCharge() int {
	n := m.AS.DirtyPages()
	m.Clock.Advance(uint64(n))
	return n
}

// BadTransitive reaches per-page work through an unexported callee that never
// charges.
func (m *Machine) BadTransitive() int {
	return m.sweepOnly()
}

func (m *Machine) sweepOnly() int {
	return m.AS.DirtyPages()
}
