// Package det plants one determinism violation per rule, each next to the
// legal idiom the rule deliberately permits.
package det

import (
	"encoding/json"
	"math/rand"
	"sort"
	"time"
)

// WallClock reads real time twice, once per forbidden function.
func WallClock() (int64, time.Duration) {
	t0 := time.Now()
	return t0.Unix(), time.Since(t0)
}

// GlobalDraw draws from the shared global generator.
func GlobalDraw() int {
	return rand.Intn(10)
}

// GlobalShuffle permutes through the global generator.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SeededDraw threads an explicit source: legal.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// MapOrderJSON marshals bytes assembled from a key+value map range.
func MapOrderJSON(m map[string]int) ([]byte, error) {
	var pairs []string
	for k, v := range m {
		pairs = append(pairs, k, string(rune('0'+v)))
	}
	return json.Marshal(pairs)
}

// SortedKeysJSON uses the key-only sorted-keys idiom: legal.
func SortedKeysJSON(m map[string]int) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]int, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return json.Marshal(vals)
}

// CountValues ranges key+value outside any JSON producer: legal.
func CountValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
