// Package simds is the fixture mirror of the charge context: Charge and
// ChargeBytes are nil-Clock guarded, which is why the purity analyzer
// whitelists them inside snapshot readers.
package simds

import "fixture/internal/simclock"

type Ctx struct {
	Clock *simclock.Clock
}

func (c *Ctx) Charge(d uint64) {
	if c.Clock != nil {
		c.Clock.Advance(d)
	}
}

func (c *Ctx) ChargeBytes(n uint64) {
	if c.Clock != nil {
		c.Clock.Advance(n / 64)
	}
}
