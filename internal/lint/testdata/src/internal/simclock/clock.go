// Package simclock is the fixture mirror of the simulated clock.
package simclock

type Clock struct {
	now uint64
}

func (c *Clock) Now() uint64      { return c.now }
func (c *Clock) Advance(d uint64) { c.now += d }
