package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Pkg is one parsed, fully type-checked package of the repository under
// analysis. Files holds the non-test files only: the contract analyzers gate
// production code, and tests legitimately use wall clocks, scratch heaps, and
// uncharged page loops.
type Pkg struct {
	Path  string      // module-qualified import path, e.g. "phoenix/internal/mem"
	Dir   string      // absolute directory
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// FuncSrc pairs a function declaration with the package it was found in.
type FuncSrc struct {
	Decl *ast.FuncDecl
	Pkg  *Pkg
}

// Repo is a loaded module tree. All packages share one FileSet and one
// type-checking universe: a module-internal import resolves to the same
// *types.Package the importee was checked into, so *types.Func identities
// are stable across packages and analyzers can chase calls cross-package.
type Repo struct {
	Root   string // absolute module root (the directory holding go.mod)
	Module string // module path from go.mod
	Fset   *token.FileSet
	Pkgs   []*Pkg // sorted by Path

	funcDecls map[*types.Func]*FuncSrc
}

// FindRoot ascends from dir to the nearest directory containing go.mod.
func FindRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: %s has no module line", gomod)
}

// LoadRepo parses and type-checks every non-test package under root,
// skipping testdata, vendor, and hidden directories. Module-internal imports
// resolve to the repository's own source; standard-library imports are
// type-checked from source (the repo is stdlib-only, so no other resolution
// is needed).
func LoadRepo(root string) (*Repo, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	im := &repoImporter{
		root:    root,
		module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Pkg{},
		loading: map[string]bool{},
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := mod
		if rel != "." {
			path = mod + "/" + filepath.ToSlash(rel)
		}
		if _, err := im.load(path, dir); err != nil {
			return nil, err
		}
	}

	repo := &Repo{Root: root, Module: mod, Fset: fset, funcDecls: map[*types.Func]*FuncSrc{}}
	for _, p := range im.pkgs {
		repo.Pkgs = append(repo.Pkgs, p)
	}
	sort.Slice(repo.Pkgs, func(i, j int) bool { return repo.Pkgs[i].Path < repo.Pkgs[j].Path })
	for _, p := range repo.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					repo.funcDecls[fn] = &FuncSrc{Decl: fd, Pkg: p}
				}
			}
		}
	}
	return repo, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test .go
// file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && goSource(e.Name()) {
			return true
		}
	}
	return false
}

func goSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// FuncDecl returns the declaration of fn, or nil when fn has no body in the
// loaded tree (stdlib functions, interface methods).
func (r *Repo) FuncDecl(fn *types.Func) *FuncSrc { return r.funcDecls[fn] }

// Position renders pos as a repo-relative forward-slash path plus line and
// column, the canonical coordinates of a Diagnostic.
func (r *Repo) Position(pos token.Pos) (file string, line, col int) {
	p := r.Fset.Position(pos)
	file = p.Filename
	if rel, err := filepath.Rel(r.Root, p.Filename); err == nil {
		file = filepath.ToSlash(rel)
	}
	return file, p.Line, p.Column
}

// NumFiles returns the total number of loaded source files.
func (r *Repo) NumFiles() int {
	n := 0
	for _, p := range r.Pkgs {
		n += len(p.Files)
	}
	return n
}

// repoImporter resolves module-internal import paths against the repository
// source (recursively type-checking and memoizing) and everything else with
// the stdlib source importer.
type repoImporter struct {
	root, module string
	fset         *token.FileSet
	std          types.Importer
	pkgs         map[string]*Pkg
	loading      map[string]bool
}

func (im *repoImporter) Import(path string) (*types.Package, error) {
	if path == im.module || strings.HasPrefix(path, im.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, im.module), "/")
		p, err := im.load(path, filepath.Join(im.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return im.std.Import(path)
}

func (im *repoImporter) load(path, dir string) (*Pkg, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	if im.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	im.loading[path] = true
	defer delete(im.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && goSource(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: im, FakeImportC: true}
	tp, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	p := &Pkg{Path: path, Dir: dir, Files: files, Types: tp, Info: info}
	im.pkgs[path] = p
	return p, nil
}
