package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The snapshot-purity analyzer statically enforces the recovery.SnapshotServer
// reader contract: the closure OpenSnapshotReader returns is called from many
// goroutines concurrently with the writer, so it — and every function it can
// reach — may touch only the frozen view and values captured at build time.
// At runtime the contract is enforced by crashing late (simds.SnapshotCtx
// carries a nil Heap and nil Clock, so an impure reader panics mid-request);
// this analyzer decides it at build time instead.
//
// Within the closure and all statically reachable callees it forbids:
//
//   - writes to package-level variables, to the enclosing method's receiver
//     state, and (inside the closure itself) to any captured variable;
//   - allocation and release on the simulated heap ((*heap.Heap).Alloc/Free);
//   - clock access (any simclock.Clock method, time.Now, time.Since) —
//     except through simds.(*Ctx).Charge/ChargeBytes, which are nil-Clock
//     guarded by construction and deliberately free under a snapshot context;
//   - mutation of the address space the view lives in (the mem.AddressSpace
//     write/map family) — a frozen MVCC version must stay frozen.
//
// Reachability is the static call graph over identifier and selector calls
// resolved by go/types, chased cross-package through the loaded module.
// Soundness caveats (documented in DESIGN.md): calls through function-typed
// values and interface methods are not resolved, and writes through pointers
// that alias receiver or global state are not tracked. Both are narrow in
// this codebase and covered dynamically by the nil-heap panic and the
// CheckFrozen oracle.
var purityAnalyzer = &Analyzer{
	Name: "snapshot-purity",
	Doc:  "functions reachable from SnapshotServer reader closures must not write shared state, allocate, or touch the clock",
	Run:  runPurity,
}

// asMutators is the mem.AddressSpace write/map family: calling any of these
// on the frozen view (or anything reachable from it) breaks snapshot
// isolation.
var asMutators = map[string]bool{
	"WriteAt": true, "WriteU8": true, "WriteU32": true, "WriteU64": true,
	"WritePtr": true, "Zero": true, "FlipBit": true, "Map": true,
	"Unmap": true, "Grow": true, "MovePages": true, "UnmovePages": true,
	"CopyPages": true, "ClearDirty": true, "ClearAllDirty": true,
}

func runPurity(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range r.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil || fd.Name.Name != "OpenSnapshotReader" {
					continue
				}
				for _, lit := range returnedClosures(fd) {
					out = append(out, checkReaderClosure(r, pkg, fd, lit)...)
				}
			}
		}
	}
	return out
}

// returnedClosures collects the function literals returned by fd — the
// reader closures whose purity the contract is about. The method body itself
// runs on the writer thread and is exempt.
func returnedClosures(fd *ast.FuncDecl) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if lit, ok := ast.Unparen(res).(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
		return true
	})
	return lits
}

// purityScope is one body under the purity check: the root closure (nil fn
// and decl) or a reachable function/method.
type purityScope struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Pkg
}

func checkReaderClosure(r *Repo, pkg *Pkg, method *ast.FuncDecl, lit *ast.FuncLit) []Diagnostic {
	var out []Diagnostic
	add := func(pos token.Pos, msg string) {
		file, line, col := r.Position(pos)
		out = append(out, Diagnostic{Analyzer: "snapshot-purity", File: file, Line: line, Col: col, Msg: msg})
	}

	// Walk the closure body, then BFS through resolved callees with bodies in
	// the loaded module. The visited set keys on *types.Func, which the shared
	// type-checking universe keeps identical across packages.
	visited := map[*types.Func]bool{}
	queue := []purityScope{{pkg: pkg}}
	for len(queue) > 0 {
		sc := queue[0]
		queue = queue[1:]

		var body *ast.BlockStmt
		var where string
		if sc.decl == nil {
			body = lit.Body
			where = fmt.Sprintf("reader closure of %s", readerName(pkg, method))
		} else {
			body = sc.decl.Body
			where = fmt.Sprintf("%s (reachable from %s's reader closure)", sc.fn.Name(), readerName(pkg, method))
		}

		callees := checkPurityBody(sc, body, lit, where, add)
		// Deterministic BFS order: chase newly discovered callees by name.
		sort.Slice(callees, func(i, j int) bool { return callees[i].FullName() < callees[j].FullName() })
		for _, fn := range callees {
			if visited[fn] {
				continue
			}
			visited[fn] = true
			if src := r.FuncDecl(fn); src != nil && src.Decl.Body != nil {
				queue = append(queue, purityScope{fn: fn, decl: src.Decl, pkg: src.Pkg})
			}
		}
	}
	return out
}

// readerName renders the receiver-qualified method name for messages.
func readerName(pkg *Pkg, method *ast.FuncDecl) string {
	if fn, ok := pkg.Info.Defs[method.Name].(*types.Func); ok {
		if recv := receiverNamed(fn); recv != "" {
			return recv + ".OpenSnapshotReader"
		}
	}
	return "OpenSnapshotReader"
}

// checkPurityBody scans one body for contract violations and returns the
// callees to chase. sc.decl is nil when body is the root closure.
func checkPurityBody(sc purityScope, body *ast.BlockStmt, root *ast.FuncLit, where string, add func(token.Pos, string)) []*types.Func {
	info := sc.pkg.Info

	// The receiver variable of the enclosing method, for receiver-write
	// detection in reachable methods.
	var recvObj types.Object
	if sc.decl != nil && sc.decl.Recv != nil && len(sc.decl.Recv.List) == 1 && len(sc.decl.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[sc.decl.Recv.List[0].Names[0]]
	}

	checkWrite := func(lhs ast.Expr) {
		target := ast.Unparen(lhs)
		if id, ok := target.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		rid := rootIdent(target)
		if rid == nil {
			return
		}
		obj := objOf(info, rid)
		if obj == nil {
			return
		}
		switch {
		case isPackageLevel(obj):
			add(lhs.Pos(), fmt.Sprintf("%s writes package-level state %s; snapshot readers must be pure", where, obj.Name()))
		case recvObj != nil && obj == recvObj && rid != target:
			// A selector/index path rooted at the receiver mutates shared
			// structure state (rebinding the receiver ident itself is local).
			add(lhs.Pos(), fmt.Sprintf("%s writes receiver state through %s; snapshot readers must be pure", where, obj.Name()))
		case sc.decl == nil && obj.Pos().IsValid() && (obj.Pos() < root.Pos() || obj.Pos() >= root.End()):
			// Inside the root closure: assignment to a variable declared
			// outside the closure is a write to captured state.
			add(lhs.Pos(), fmt.Sprintf("%s writes captured variable %s; snapshot readers must be pure", where, obj.Name()))
		}
	}

	var callees []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if node.Tok == token.DEFINE {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.Defs[id] != nil {
						continue // fresh local binding
					}
				}
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(node.X)
		case *ast.CallExpr:
			fn := calleeOf(info, node)
			if fn == nil {
				return true
			}
			switch {
			case isMethodOf(fn, "internal/simds", "Ctx", "Charge"), isMethodOf(fn, "internal/simds", "Ctx", "ChargeBytes"):
				// Whitelisted: nil-Clock guarded, free under SnapshotCtx.
				return true
			case isMethodOf(fn, "internal/heap", "Heap", "Alloc"):
				add(node.Pos(), fmt.Sprintf("%s calls heap.Alloc; snapshot readers must not allocate simulated memory", where))
			case isMethodOf(fn, "internal/heap", "Heap", "Free"):
				add(node.Pos(), fmt.Sprintf("%s calls heap.Free; snapshot readers must not release simulated memory", where))
			case receiverNamed(fn) == "Clock" && inPackage(fn, "internal/simclock"):
				add(node.Pos(), fmt.Sprintf("%s calls Clock.%s; snapshot readers must not touch the clock", where, fn.Name()))
			case isPkgFunc(fn, "time", "Now"), isPkgFunc(fn, "time", "Since"):
				add(node.Pos(), fmt.Sprintf("%s reads the wall clock via time.%s", where, fn.Name()))
			case receiverNamed(fn) == "AddressSpace" && inPackage(fn, "internal/mem") && asMutators[fn.Name()]:
				add(node.Pos(), fmt.Sprintf("%s calls AddressSpace.%s; the frozen view must not be mutated", where, fn.Name()))
			default:
				if !seen[fn] {
					seen[fn] = true
					callees = append(callees, fn)
				}
			}
		}
		return true
	})
	return callees
}
