package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
)

// AnalyzerResult is one analyzer's slice of the campaign report.
type AnalyzerResult struct {
	Name     string `json:"name"`
	Doc      string `json:"doc"`
	Findings int    `json:"findings"`
}

// Report is the deterministic product of a full lint campaign: same tree,
// same baseline → byte-identical JSON (CI double-runs and cmps it, the same
// discipline every other campaign in this repo is held to).
type Report struct {
	Module     string           `json:"module"`
	Packages   int              `json:"packages"`
	Files      int              `json:"files"`
	Analyzers  []AnalyzerResult `json:"analyzers"`
	Baselined  int              `json:"baselined"`
	Findings   []Diagnostic     `json:"findings"`
	Clean      bool             `json:"clean"`
	Suppressed []Diagnostic     `json:"suppressed,omitempty"`
}

// Campaign loads the module rooted at root, runs every registered analyzer,
// and applies the checked-in baseline. Findings surviving the baseline mean
// the tree violates a contract (Clean=false).
func Campaign(root string) (*Report, error) {
	repo, err := LoadRepo(root)
	if err != nil {
		return nil, err
	}
	base, err := LoadBaseline(filepath.Join(root, filepath.FromSlash(BaselinePath)))
	if err != nil {
		return nil, err
	}

	rep := &Report{Module: repo.Module, Packages: len(repo.Pkgs), Files: repo.NumFiles()}
	var all []Diagnostic
	for _, a := range Analyzers() {
		diags := a.Run(repo)
		rep.Analyzers = append(rep.Analyzers, AnalyzerResult{Name: a.Name, Doc: a.Doc, Findings: len(diags)})
		all = append(all, diags...)
	}
	sortDiagnostics(all)

	kept, suppressed := ApplyBaseline(all, base)
	rep.Findings = kept
	rep.Suppressed = suppressed
	rep.Baselined = len(suppressed)
	rep.Clean = len(kept) == 0
	return rep, nil
}

// JSON renders the report as stable indented JSON (slices pre-sorted, no
// maps), terminated by a newline.
func (rep *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FmtReport renders the human-readable campaign summary.
func FmtReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "phoenixlint: %s — %d packages, %d files\n", rep.Module, rep.Packages, rep.Files)
	for _, a := range rep.Analyzers {
		fmt.Fprintf(&b, "  %-16s %3d finding(s)  %s\n", a.Name, a.Findings, a.Doc)
	}
	fmt.Fprintf(&b, "  baseline suppressed %d accepted exception(s)\n", rep.Baselined)
	if rep.Clean {
		b.WriteString("  CLEAN: no findings beyond baseline\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %d finding(s) beyond baseline:\n", len(rep.Findings))
	for _, d := range rep.Findings {
		fmt.Fprintf(&b, "    %s\n", d.String())
	}
	return b.String()
}
