package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDeterministicPackagesClean is the gate: the deterministic-simulation
// packages must be free of wall-clock reads, global-rand draws, and
// map-order-dependent JSON assembly. (Test files are exempt — e.g. the race
// harness legitimately uses wall-clock timeouts.)
func TestDeterministicPackagesClean(t *testing.T) {
	for _, dir := range []string{
		"../netsim",
		"../cluster",
		"../shard",
		"../explore",
		"../simclock",
		"../experiments",
	} {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			issues, err := CheckDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range issues {
				t.Errorf("%s", i)
			}
		})
	}
}

// TestLintFlagsViolations feeds the lint synthetic violations of each rule
// and asserts they are caught (and that clean equivalents are not).
func TestLintFlagsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("bad.go", `package p

import (
	"encoding/json"
	"math/rand"
	"time"
)

func wall() int64 { return time.Now().UnixNano() }

func draw() int { return rand.Intn(6) }

func encode(m map[string]int) []byte {
	total := 0
	for k, v := range m {
		_ = k
		total += v
	}
	b, _ := json.Marshal(total)
	return b
}
`)
	write("good.go", `package p

import (
	"encoding/json"
	"math/rand"
	"sort"
)

func seeded(seed int64) int { return rand.New(rand.NewSource(seed)).Intn(6) }

func encodeSorted(m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]int, 0, len(keys))
	for i, k := range keys {
		_ = i
		vals = append(vals, m[k])
	}
	b, _ := json.Marshal(vals)
	return b
}
`)
	write("skip_test.go", `package p

import "time"

func inTest() int64 { return time.Now().UnixNano() }
`)
	issues, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string]int{}
	for _, i := range issues {
		if filepath.Base(i.File) != "bad.go" {
			t.Errorf("issue outside bad.go: %s", i)
		}
		rules[i.Rule]++
	}
	for _, want := range []string{"wallclock", "globalrand", "maporder"} {
		if rules[want] != 1 {
			t.Errorf("rule %s flagged %d time(s), want 1 (all: %v)", want, rules[want], issues)
		}
	}
}
