package bugs

import "testing"

func TestStudyTotalsMatchPaper(t *testing.T) {
	tot := StudyTotals()
	if tot.Cases != 64 {
		t.Fatalf("cases = %d, want 64", tot.Cases)
	}
	if tot.TempOnly != 35 || tot.BadGlob != 8 || tot.GoodGlob != 21 {
		t.Fatalf("state taxonomy %d/%d/%d, want 35/8/21", tot.TempOnly, tot.BadGlob, tot.GoodGlob)
	}
	if tot.Partial != 9 || tot.Modify != 21 {
		t.Fatalf("timing/op taxonomy %d/%d, want 9/21", tot.Partial, tot.Modify)
	}
	// Finding 1: 87.5% temporary-only or no corruption.
	if pct := 100 * (tot.TempOnly + tot.GoodGlob) / tot.Cases; pct != 87 {
		t.Fatalf("finding-1 percentage = %d, want 87 (87.5%%)", pct)
	}
	// Each row's taxonomy partitions its cases.
	for _, r := range Study() {
		if r.TempOnly+r.BadGlob+r.GoodGlob != r.Cases {
			t.Fatalf("%s: state taxonomy does not partition (%d+%d+%d != %d)",
				r.System, r.TempOnly, r.BadGlob, r.GoodGlob, r.Cases)
		}
	}
}

func TestSeventeenBugs(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("got %d bugs, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.ID] {
			t.Fatalf("duplicate bug %s", b.ID)
		}
		seen[b.ID] = true
		if b.System == "" || b.Desc == "" || b.Case == "" {
			t.Fatalf("incomplete bug %+v", b)
		}
	}
	// R2 is the single expected fallback (§4.3.2).
	fallbacks := 0
	for _, b := range all {
		if b.Expected == OutcomeFallback {
			fallbacks++
			if b.ID != "R2" {
				t.Fatalf("unexpected fallback bug %s", b.ID)
			}
		}
	}
	if fallbacks != 1 {
		t.Fatalf("fallback count = %d", fallbacks)
	}
	// Hang bugs are the three the paper's watchdogs end.
	hangs := map[string]bool{"R4": true, "L2": true, "VA3": true}
	for _, b := range all {
		if b.Hang != hangs[b.ID] {
			t.Fatalf("bug %s hang flag wrong", b.ID)
		}
	}
}

func TestLookups(t *testing.T) {
	b, ok := ByID("VA3")
	if !ok || b.System != "webcache-varnish" {
		t.Fatalf("ByID(VA3) = %+v, %v", b, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) found something")
	}
	if got := len(ForSystem("webcache-squid")); got != 5 {
		t.Fatalf("squid bugs = %d, want 5", got)
	}
	if got := len(ForSystem("kvstore")); got != 4 {
		t.Fatalf("kvstore bugs = %d, want 4", got)
	}
}
