// Package bugs encodes the paper's empirical bug data: the 64-case failure
// study of §2.3 (Table 1) and the 17 reproduced real-world bugs of §4.3
// (Table 5), and wires each reproduced bug to the scenario implemented in
// the corresponding application analogue.
package bugs

// StudyRow is one system's row in the Table 1 failure study.
type StudyRow struct {
	System   string
	Language string
	Cases    int
	TempOnly int // failures touching only temporary state
	BadGlob  int // failures corrupting global state
	GoodGlob int // failures leaving global state intact
	Partial  int // failures during partial updates
	Modify   int // failures inside modifying operations
}

// Study returns the Table 1 dataset.
func Study() []StudyRow {
	return []StudyRow{
		{"Redis", "C", 17, 12, 3, 2, 2, 6},
		{"MySQL", "C++", 14, 6, 4, 4, 2, 6},
		{"Hadoop", "Java", 8, 2, 0, 6, 0, 4},
		{"MongoDB", "C++", 9, 6, 1, 2, 0, 0},
		{"Ceph", "C++", 8, 2, 0, 6, 5, 5},
		{"ElasticSearch", "Java", 8, 7, 0, 1, 0, 0},
	}
}

// StudyTotals aggregates the study rows.
func StudyTotals() StudyRow {
	t := StudyRow{System: "Total"}
	for _, r := range Study() {
		t.Cases += r.Cases
		t.TempOnly += r.TempOnly
		t.BadGlob += r.BadGlob
		t.GoodGlob += r.GoodGlob
		t.Partial += r.Partial
		t.Modify += r.Modify
	}
	return t
}

// Outcome is the expected PHOENIX result for a reproduced bug.
type Outcome int

const (
	// OutcomeRecover: PHOENIX-mode restart succeeds with preserved state.
	OutcomeRecover Outcome = iota
	// OutcomeFallback: the unsafe-region check rejects preservation and the
	// system falls back to default recovery (R2 in §4.3.2).
	OutcomeFallback
)

// Bug is one reproduced real-world case (Table 5).
type Bug struct {
	ID       string // e.g. "R4"
	System   string // app analogue name
	Case     string // upstream ticket number
	Desc     string
	Hang     bool // manifests as a hang (watchdog-terminated)
	Expected Outcome
}

// All returns the 17 reproduced bugs in Table 5 order.
func All() []Bug {
	return []Bug{
		{"R1", "kvstore", "761", "OOM due to integer overflow", false, OutcomeRecover},
		{"R2", "kvstore", "7445", "Unsanitized memory overwrite", false, OutcomeFallback},
		{"R3", "kvstore", "10070", "Nullptr dereference", false, OutcomeRecover},
		{"R4", "kvstore", "12290", "Hang due to infinite loop", true, OutcomeRecover},
		{"L1", "lsmdb", "169", "Race on file operations", false, OutcomeRecover},
		{"L2", "lsmdb", "245", "Hang due to unreleased lock", true, OutcomeRecover},
		{"VA1", "webcache-varnish", "2434", "Unsynchronized critical section", false, OutcomeRecover},
		{"VA2", "webcache-varnish", "2495", "Memory leak", false, OutcomeRecover},
		{"VA3", "webcache-varnish", "2796", "Deadlock from priority inversion", true, OutcomeRecover},
		{"VA4", "webcache-varnish", "3319", "Buffer overflow", false, OutcomeRecover},
		{"S1", "webcache-squid", "1517", "Buffer overflow", false, OutcomeRecover},
		{"S2", "webcache-squid", "257", "Using closed file descriptor", false, OutcomeRecover},
		{"S3", "webcache-squid", "3735", "Passing incorrect type", false, OutcomeRecover},
		{"S4", "webcache-squid", "3869", "Missing null terminator", false, OutcomeRecover},
		{"S5", "webcache-squid", "4823", "Incorrect length check assertion", false, OutcomeRecover},
		{"X1", "boost", "3579", "Memory leak", false, OutcomeRecover},
		{"VP1", "particle", "118", "Out-of-bound, forgot index revert", false, OutcomeRecover},
	}
}

// ByID returns the bug with the given ID (ok=false if unknown).
func ByID(id string) (Bug, bool) {
	for _, b := range All() {
		if b.ID == id {
			return b, true
		}
	}
	return Bug{}, false
}

// ForSystem returns the bugs reproduced against one system.
func ForSystem(system string) []Bug {
	var out []Bug
	for _, b := range All() {
		if b.System == system {
			out = append(out, b)
		}
	}
	return out
}
