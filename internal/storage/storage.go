// Package storage implements the simulated disk used by builtin persistence
// (RDB-style snapshots, write-ahead logs, checkpoints) and by the CRIU-style
// baseline. Reads and writes advance the simulated clock according to the
// cost model's sequential-throughput and latency constants, which is what
// makes builtin recovery slow in exactly the way §2.1 describes.
package storage

import (
	"fmt"
	"sort"

	"phoenix/internal/costmodel"
	"phoenix/internal/simclock"
)

// Disk is a simulated block device with a flat namespace of files.
type Disk struct {
	clock *simclock.Clock
	model costmodel.Model
	files map[string]*File

	// Totals for diagnostics and overhead accounting.
	bytesRead    int64
	bytesWritten int64
	ops          int64
}

// File is a simulated on-disk file.
type File struct {
	Name string
	Data []byte
}

// NewDisk returns an empty disk attached to the clock and cost model.
func NewDisk(clock *simclock.Clock, model costmodel.Model) *Disk {
	return &Disk{clock: clock, model: model, files: make(map[string]*File)}
}

// WriteFile replaces the file's content, charging sequential-write time.
func (d *Disk) WriteFile(name string, data []byte) {
	d.clock.Advance(d.model.DiskWrite(int64(len(data))))
	d.files[name] = &File{Name: name, Data: append([]byte(nil), data...)}
	d.bytesWritten += int64(len(data))
	d.ops++
}

// Append appends data to the file (creating it if absent), charging write
// time plus the fixed latency — the journaling cost of §2.2.
func (d *Disk) Append(name string, data []byte) {
	d.clock.Advance(d.model.DiskWrite(int64(len(data))))
	f := d.files[name]
	if f == nil {
		f = &File{Name: name}
		d.files[name] = f
	}
	f.Data = append(f.Data, data...)
	d.bytesWritten += int64(len(data))
	d.ops++
}

// ReadFile returns a copy of the file's content, charging sequential-read
// time. ok is false if the file does not exist (no time is charged beyond
// the fixed latency).
func (d *Disk) ReadFile(name string) (data []byte, ok bool) {
	f := d.files[name]
	if f == nil {
		d.clock.Advance(d.model.DiskLatency)
		d.ops++
		return nil, false
	}
	d.clock.Advance(d.model.DiskRead(int64(len(f.Data))))
	d.bytesRead += int64(len(f.Data))
	d.ops++
	return append([]byte(nil), f.Data...), true
}

// Exists reports whether the file exists without charging I/O time.
func (d *Disk) Exists(name string) bool { return d.files[name] != nil }

// Size returns the file's size in bytes, or -1 if it does not exist.
func (d *Disk) Size(name string) int64 {
	f := d.files[name]
	if f == nil {
		return -1
	}
	return int64(len(f.Data))
}

// Remove deletes the file if present.
func (d *Disk) Remove(name string) {
	d.clock.Advance(d.model.DiskLatency)
	delete(d.files, name)
	d.ops++
}

// Rename atomically renames a file, as persistence code does for snapshot
// swap-in. It returns an error if the source is missing.
func (d *Disk) Rename(from, to string) error {
	f := d.files[from]
	if f == nil {
		return fmt.Errorf("storage: rename %q: no such file", from)
	}
	d.clock.Advance(d.model.DiskLatency)
	delete(d.files, from)
	f.Name = to
	d.files[to] = f
	d.ops++
	return nil
}

// List returns the file names in sorted order.
func (d *Disk) List() []string {
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BytesRead returns the cumulative bytes read since creation.
func (d *Disk) BytesRead() int64 { return d.bytesRead }

// BytesWritten returns the cumulative bytes written since creation.
func (d *Disk) BytesWritten() int64 { return d.bytesWritten }

// Ops returns the cumulative I/O operation count.
func (d *Disk) Ops() int64 { return d.ops }

// TotalBytes returns the total size of all stored files.
func (d *Disk) TotalBytes() int64 {
	var n int64
	for _, f := range d.files {
		n += int64(len(f.Data))
	}
	return n
}
