package storage

import (
	"bytes"
	"testing"

	"phoenix/internal/costmodel"
	"phoenix/internal/simclock"
)

func newDisk() (*simclock.Clock, *Disk) {
	clk := simclock.New()
	return clk, NewDisk(clk, costmodel.Default())
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, d := newDisk()
	data := []byte("snapshot-bytes")
	d.WriteFile("dump.rdb", data)
	got, ok := d.ReadFile("dump.rdb")
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: ok=%v got=%q", ok, got)
	}
	// Returned slice is a copy.
	got[0] = 'X'
	again, _ := d.ReadFile("dump.rdb")
	if again[0] == 'X' {
		t.Fatal("ReadFile aliases stored data")
	}
}

func TestWriteChargesTime(t *testing.T) {
	clk, d := newDisk()
	model := costmodel.Default()
	d.WriteFile("f", make([]byte, 1<<20))
	if got, want := clk.Now(), model.DiskWrite(1<<20); got != want {
		t.Fatalf("write charged %v, want %v", got, want)
	}
}

func TestReadChargesTime(t *testing.T) {
	clk, d := newDisk()
	model := costmodel.Default()
	d.WriteFile("f", make([]byte, 1<<20))
	before := clk.Now()
	d.ReadFile("f")
	if got, want := clk.Now()-before, model.DiskRead(1<<20); got != want {
		t.Fatalf("read charged %v, want %v", got, want)
	}
}

func TestMissingFile(t *testing.T) {
	_, d := newDisk()
	if _, ok := d.ReadFile("nope"); ok {
		t.Fatal("missing file read ok")
	}
	if d.Exists("nope") || d.Size("nope") != -1 {
		t.Fatal("missing file metadata wrong")
	}
}

func TestAppend(t *testing.T) {
	_, d := newDisk()
	d.Append("wal", []byte("rec1;"))
	d.Append("wal", []byte("rec2;"))
	got, _ := d.ReadFile("wal")
	if string(got) != "rec1;rec2;" {
		t.Fatalf("append content %q", got)
	}
	if d.Size("wal") != 10 {
		t.Fatalf("Size = %d", d.Size("wal"))
	}
}

func TestRename(t *testing.T) {
	_, d := newDisk()
	d.WriteFile("tmp", []byte("x"))
	if err := d.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("tmp") || !d.Exists("final") {
		t.Fatal("rename did not move file")
	}
	if err := d.Rename("tmp", "y"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
}

func TestRemoveAndList(t *testing.T) {
	_, d := newDisk()
	d.WriteFile("b", nil)
	d.WriteFile("a", nil)
	if got := d.List(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("List = %v", got)
	}
	d.Remove("a")
	if d.Exists("a") {
		t.Fatal("file still exists after Remove")
	}
}

func TestCounters(t *testing.T) {
	_, d := newDisk()
	d.WriteFile("f", make([]byte, 100))
	d.Append("f", make([]byte, 50))
	d.ReadFile("f")
	if d.BytesWritten() != 150 || d.BytesRead() != 150 || d.Ops() != 3 {
		t.Fatalf("counters: w=%d r=%d ops=%d", d.BytesWritten(), d.BytesRead(), d.Ops())
	}
	if d.TotalBytes() != 150 {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}
