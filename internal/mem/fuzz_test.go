package mem

// Fuzz targets for the integrity primitive and the page I/O substrate. The
// FNV-1a checksum is the detector every preserve_exec integrity check rests
// on, and its contract is exact: any single-bit flip anywhere in a preserved
// page must change the sum (each FNV-1a step is injective in the running
// state, so one flipped input bit can never cancel), and flipping the same
// bit back must restore it. The page I/O target checks that WriteAt/ReadBytes
// round-trip arbitrary payloads at arbitrary offsets and that PageChecksum
// always agrees with hashing what ReadAt observes — including unmaterialized
// all-zero frames.

import (
	"bytes"
	"testing"
)

const fuzzBase = VAddr(0x4000_0000)

// FuzzChecksumFlip: single-bit corruption is always detected, and is an
// involution on the checksum.
func FuzzChecksumFlip(f *testing.F) {
	f.Add([]byte{}, uint32(0), uint32(0))
	f.Add([]byte{0}, uint32(0), uint32(0))
	f.Add([]byte("phoenix preserve_exec"), uint32(7), uint32(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 257), uint32(256), uint32(7))

	f.Fuzz(func(t *testing.T, data []byte, off, bit uint32) {
		if len(data) > 2*PageSize {
			data = data[:2*PageSize]
		}
		as := NewAddressSpace()
		if _, err := as.Map(fuzzBase, 2, KindCustom, "fuzz"); err != nil {
			t.Fatal(err)
		}
		as.WriteAt(fuzzBase, data)

		p := PageOf(fuzzBase)
		before := as.PageChecksum(p)
		if want := Checksum(as.ReadBytes(PageBase(fuzzBase), PageSize)); before != want {
			t.Fatalf("PageChecksum %#x disagrees with Checksum over ReadBytes %#x", before, want)
		}

		addr := fuzzBase + VAddr(off)%PageSize
		as.FlipBit(addr, uint(bit))
		flipped := as.PageChecksum(p)
		if flipped == before {
			t.Fatalf("bit flip at %#x bit %d left the page checksum at %#x", uint64(addr), bit%8, before)
		}
		as.FlipBit(addr, uint(bit))
		if restored := as.PageChecksum(p); restored != before {
			t.Fatalf("flip-back did not restore the checksum: %#x != %#x", restored, before)
		}

		// The pure function obeys the same contract without an address space.
		if len(data) > 0 {
			c1 := Checksum(data)
			i := int(off) % len(data)
			data[i] ^= 1 << (bit % 8)
			if c2 := Checksum(data); c2 == c1 {
				t.Fatalf("Checksum collision across a single-bit flip at byte %d", i)
			}
			data[i] ^= 1 << (bit % 8)
			if c3 := Checksum(data); c3 != c1 {
				t.Fatalf("Checksum not restored by flip-back: %#x != %#x", c3, c1)
			}
		}
	})
}

// FuzzPageIO: WriteAt/ReadBytes round-trip across page boundaries, and
// checksums track content, not materialization history.
func FuzzPageIO(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0xAB}, uint32(PageSize-1))                     // straddle-adjacent last byte
	f.Add(bytes.Repeat([]byte{0x5A}, 300), uint32(PageSize-10)) // crosses the boundary
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 100), uint32(17))

	f.Fuzz(func(t *testing.T, data []byte, off uint32) {
		const pages = 4
		if len(data) > 2*PageSize {
			data = data[:2*PageSize]
		}
		as := NewAddressSpace()
		if _, err := as.Map(fuzzBase, pages, KindCustom, "fuzz"); err != nil {
			t.Fatal(err)
		}
		span := pages*PageSize - len(data)
		addr := fuzzBase + VAddr(int(off)%(span+1))
		as.WriteAt(addr, data)
		if got := as.ReadBytes(addr, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("round-trip at %#x: wrote %d bytes, read them back differently", uint64(addr), len(data))
		}

		// Every page's checksum equals the hash of what a reader observes,
		// whether or not the write materialized that frame.
		for i := 0; i < pages; i++ {
			p := PageOf(fuzzBase) + PageNum(i)
			want := Checksum(as.ReadBytes(fuzzBase+VAddr(i*PageSize), PageSize))
			if got := as.PageChecksum(p); got != want {
				t.Fatalf("page %d: PageChecksum %#x != Checksum(ReadBytes) %#x", i, got, want)
			}
		}

		// A write of zeros is indistinguishable from no write at all: the
		// checksum tracks content, not materialization history.
		asZ := NewAddressSpace()
		if _, err := asZ.Map(fuzzBase, 1, KindCustom, "zero"); err != nil {
			t.Fatal(err)
		}
		asZ.WriteAt(fuzzBase, make([]byte, min(len(data), PageSize)))
		if asZ.PageChecksum(PageOf(fuzzBase)) != Checksum(make([]byte, PageSize)) {
			t.Fatal("explicit zero write changed the page checksum away from the zero page")
		}
	})
}

// pageState is the observable state of one page: what a reader sees, what the
// integrity layer would stamp, and what the preservation machinery tracks.
type pageState struct {
	content  []byte
	sum      uint64
	dirty    bool
	resident bool
}

func capturePages(as *AddressSpace, base VAddr, pages int) []pageState {
	out := make([]pageState, pages)
	for i := 0; i < pages; i++ {
		p := PageOf(base) + PageNum(i)
		out[i] = pageState{
			content:  as.ReadBytes(base+VAddr(i)*PageSize, PageSize),
			sum:      as.PageChecksum(p),
			dirty:    as.PageDirty(p),
			resident: as.PageResident(p),
		}
	}
	return out
}

type mappingState struct {
	start VAddr
	pages int
	kind  Kind
	name  string
}

func captureMappings(as *AddressSpace) []mappingState {
	var out []mappingState
	for _, m := range as.Mappings() {
		out = append(out, mappingState{m.Start, m.Pages, m.Kind, m.Name})
	}
	return out
}

// FuzzMoveUnmoveRoundTrip: MovePages followed by UnmovePages restores the
// source byte-exactly — mappings, frame residency, dirty bits, and per-page
// checksums — and leaves the destination empty, for arbitrary ranges that
// partially cover several mappings. This is the rollback contract preserve_exec
// leans on when a mid-commit fault aborts the transfer: the dying process must
// come back exactly as it was, including the soft-dirty baseline.
func FuzzMoveUnmoveRoundTrip(f *testing.F) {
	f.Add([]byte("phoenix"), uint32(0), uint32(9), uint32(0), uint32(0))
	f.Add(bytes.Repeat([]byte{0xEE}, 5000), uint32(1), uint32(6), uint32(2*PageSize), uint32(7*PageSize+3))
	f.Add([]byte{1}, uint32(4), uint32(2), uint32(PageSize), uint32(0))    // inside middle mapping
	f.Add([]byte{}, uint32(2), uint32(4), uint32(3*PageSize), uint32(100)) // straddles all three

	f.Fuzz(func(t *testing.T, data []byte, startPg, numPg, zeroOff, flipOff uint32) {
		const totalPages = 9
		if len(data) > 3*PageSize {
			data = data[:3*PageSize]
		}
		src := NewAddressSpace()
		// Three adjacent mappings — pages [0,3), [3,5), [5,9) — so a single
		// move range can partially cover more than one of them.
		for _, m := range []struct {
			pg, n int
			name  string
		}{{0, 3, "a"}, {3, 2, "b"}, {5, 4, "c"}} {
			if _, err := src.Map(fuzzBase+VAddr(m.pg)*PageSize, m.n, KindCustom, m.name); err != nil {
				t.Fatal(err)
			}
		}
		// Mutate through several paths so the snapshot holds a mix of
		// resident/non-resident and dirty/clean pages.
		span := totalPages*PageSize - len(data)
		src.WriteAt(fuzzBase+VAddr(int(zeroOff)%(span+1)), data)
		src.Zero(fuzzBase+VAddr(zeroOff)%(totalPages*PageSize-64), 64)
		src.FlipBit(fuzzBase+VAddr(flipOff)%(totalPages*PageSize), uint(flipOff))
		src.ClearDirty(fuzzBase, int(startPg)%totalPages+1)

		before := capturePages(src, fuzzBase, totalPages)
		beforeMaps := captureMappings(src)

		s := int(startPg) % totalPages
		n := 1 + int(numPg)%(totalPages-s)
		moveStart := fuzzBase + VAddr(s)*PageSize

		dst := NewAddressSpace()
		if _, err := src.MovePages(dst, moveStart, n); err != nil {
			t.Fatal(err)
		}

		// The destination observes exactly the moved pages' pre-move state:
		// zero-copy means content, checksums, and dirty bits are the same
		// physical frames.
		got := capturePages(dst, moveStart, n)
		for i, g := range got {
			w := before[s+i]
			if !bytes.Equal(g.content, w.content) || g.sum != w.sum || g.dirty != w.dirty || g.resident != w.resident {
				t.Fatalf("page %d after MovePages: (sum=%#x dirty=%v resident=%v) want (sum=%#x dirty=%v resident=%v)",
					s+i, g.sum, g.dirty, g.resident, w.sum, w.dirty, w.resident)
			}
		}
		dstPages := 0
		for _, m := range dst.Mappings() {
			dstPages += m.Pages
			orig := src.FindMapping(m.Start)
			if orig == nil || orig.Kind != m.Kind || orig.Name != m.Name {
				t.Fatalf("mirror mapping %q at %#x does not match a source mapping", m.Name, uint64(m.Start))
			}
		}
		if dstPages != n {
			t.Fatalf("destination maps %d pages, want %d", dstPages, n)
		}

		dst.UnmovePages(src, moveStart, n)

		// Source is restored byte-exactly: mappings, content, residency,
		// dirty bits, checksums.
		afterMaps := captureMappings(src)
		if len(afterMaps) != len(beforeMaps) {
			t.Fatalf("mapping count changed across round-trip: %d != %d", len(afterMaps), len(beforeMaps))
		}
		for i := range afterMaps {
			if afterMaps[i] != beforeMaps[i] {
				t.Fatalf("mapping %d changed across round-trip: %+v != %+v", i, afterMaps[i], beforeMaps[i])
			}
		}
		after := capturePages(src, fuzzBase, totalPages)
		for i := range after {
			if !bytes.Equal(after[i].content, before[i].content) {
				t.Fatalf("page %d content changed across round-trip", i)
			}
			if after[i].sum != before[i].sum {
				t.Fatalf("page %d checksum changed across round-trip: %#x != %#x", i, after[i].sum, before[i].sum)
			}
			if after[i].dirty != before[i].dirty {
				t.Fatalf("page %d dirty bit changed across round-trip: %v != %v", i, after[i].dirty, before[i].dirty)
			}
			if after[i].resident != before[i].resident {
				t.Fatalf("page %d residency changed across round-trip: %v != %v", i, after[i].resident, before[i].resident)
			}
		}
		// The destination is fully cleaned up: no mirror mappings, no frames.
		if ms := dst.Mappings(); len(ms) != 0 {
			t.Fatalf("destination still has %d mappings after UnmovePages", len(ms))
		}
		if dst.ResidentPages() != 0 || len(dst.DirtySet()) != 0 {
			t.Fatal("destination still holds frames after UnmovePages")
		}
	})
}
