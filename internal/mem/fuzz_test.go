package mem

// Fuzz targets for the integrity primitive and the page I/O substrate. The
// FNV-1a checksum is the detector every preserve_exec integrity check rests
// on, and its contract is exact: any single-bit flip anywhere in a preserved
// page must change the sum (each FNV-1a step is injective in the running
// state, so one flipped input bit can never cancel), and flipping the same
// bit back must restore it. The page I/O target checks that WriteAt/ReadBytes
// round-trip arbitrary payloads at arbitrary offsets and that PageChecksum
// always agrees with hashing what ReadAt observes — including unmaterialized
// all-zero frames.

import (
	"bytes"
	"testing"
)

const fuzzBase = VAddr(0x4000_0000)

// FuzzChecksumFlip: single-bit corruption is always detected, and is an
// involution on the checksum.
func FuzzChecksumFlip(f *testing.F) {
	f.Add([]byte{}, uint32(0), uint32(0))
	f.Add([]byte{0}, uint32(0), uint32(0))
	f.Add([]byte("phoenix preserve_exec"), uint32(7), uint32(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 257), uint32(256), uint32(7))

	f.Fuzz(func(t *testing.T, data []byte, off, bit uint32) {
		if len(data) > 2*PageSize {
			data = data[:2*PageSize]
		}
		as := NewAddressSpace()
		if _, err := as.Map(fuzzBase, 2, KindCustom, "fuzz"); err != nil {
			t.Fatal(err)
		}
		as.WriteAt(fuzzBase, data)

		p := PageOf(fuzzBase)
		before := as.PageChecksum(p)
		if want := Checksum(as.ReadBytes(PageBase(fuzzBase), PageSize)); before != want {
			t.Fatalf("PageChecksum %#x disagrees with Checksum over ReadBytes %#x", before, want)
		}

		addr := fuzzBase + VAddr(off)%PageSize
		as.FlipBit(addr, uint(bit))
		flipped := as.PageChecksum(p)
		if flipped == before {
			t.Fatalf("bit flip at %#x bit %d left the page checksum at %#x", uint64(addr), bit%8, before)
		}
		as.FlipBit(addr, uint(bit))
		if restored := as.PageChecksum(p); restored != before {
			t.Fatalf("flip-back did not restore the checksum: %#x != %#x", restored, before)
		}

		// The pure function obeys the same contract without an address space.
		if len(data) > 0 {
			c1 := Checksum(data)
			i := int(off) % len(data)
			data[i] ^= 1 << (bit % 8)
			if c2 := Checksum(data); c2 == c1 {
				t.Fatalf("Checksum collision across a single-bit flip at byte %d", i)
			}
			data[i] ^= 1 << (bit % 8)
			if c3 := Checksum(data); c3 != c1 {
				t.Fatalf("Checksum not restored by flip-back: %#x != %#x", c3, c1)
			}
		}
	})
}

// FuzzPageIO: WriteAt/ReadBytes round-trip across page boundaries, and
// checksums track content, not materialization history.
func FuzzPageIO(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0xAB}, uint32(PageSize-1))                     // straddle-adjacent last byte
	f.Add(bytes.Repeat([]byte{0x5A}, 300), uint32(PageSize-10)) // crosses the boundary
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 100), uint32(17))

	f.Fuzz(func(t *testing.T, data []byte, off uint32) {
		const pages = 4
		if len(data) > 2*PageSize {
			data = data[:2*PageSize]
		}
		as := NewAddressSpace()
		if _, err := as.Map(fuzzBase, pages, KindCustom, "fuzz"); err != nil {
			t.Fatal(err)
		}
		span := pages*PageSize - len(data)
		addr := fuzzBase + VAddr(int(off)%(span+1))
		as.WriteAt(addr, data)
		if got := as.ReadBytes(addr, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("round-trip at %#x: wrote %d bytes, read them back differently", uint64(addr), len(data))
		}

		// Every page's checksum equals the hash of what a reader observes,
		// whether or not the write materialized that frame.
		for i := 0; i < pages; i++ {
			p := PageOf(fuzzBase) + PageNum(i)
			want := Checksum(as.ReadBytes(fuzzBase+VAddr(i*PageSize), PageSize))
			if got := as.PageChecksum(p); got != want {
				t.Fatalf("page %d: PageChecksum %#x != Checksum(ReadBytes) %#x", i, got, want)
			}
		}

		// A write of zeros is indistinguishable from no write at all: the
		// checksum tracks content, not materialization history.
		asZ := NewAddressSpace()
		if _, err := asZ.Map(fuzzBase, 1, KindCustom, "zero"); err != nil {
			t.Fatal(err)
		}
		asZ.WriteAt(fuzzBase, make([]byte, min(len(data), PageSize)))
		if asZ.PageChecksum(PageOf(fuzzBase)) != Checksum(make([]byte, PageSize)) {
			t.Fatal("explicit zero write changed the page checksum away from the zero page")
		}
	})
}
