package mem

import "testing"

func TestChecksumFNV1a(t *testing.T) {
	// FNV-1a offset basis for empty input; "a" is the classic known vector.
	if got := Checksum(nil); got != 0xcbf29ce484222325 {
		t.Fatalf("Checksum(nil) = %#x", got)
	}
	if got := Checksum([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("Checksum(\"a\") = %#x", got)
	}
	if Checksum([]byte{1, 2}) == Checksum([]byte{2, 1}) {
		t.Fatal("checksum is order-insensitive")
	}
}

func TestPageChecksumAndFlipBit(t *testing.T) {
	as := NewAddressSpace()
	const base = VAddr(0x2000_0000)
	if _, err := as.Map(base, 2, KindCustom, "s"); err != nil {
		t.Fatal(err)
	}
	// An unmaterialized frame checksums as a zero page.
	zero := Checksum(make([]byte, PageSize))
	if got := as.PageChecksum(PageOf(base)); got != zero {
		t.Fatalf("unmaterialized page checksum %#x, want zero-page %#x", got, zero)
	}

	as.WriteU64(base, 0xDEAD_BEEF)
	clean := as.PageChecksum(PageOf(base))
	if clean == zero {
		t.Fatal("write did not change the page checksum")
	}
	if as.PageChecksum(PageOf(base)) != clean {
		t.Fatal("checksum not deterministic")
	}

	// A single bit flip changes the checksum; flipping it back restores it.
	as.FlipBit(base+100, 3)
	if as.PageChecksum(PageOf(base)) == clean {
		t.Fatal("bit flip invisible to the page checksum")
	}
	as.FlipBit(base+100, 3)
	if as.PageChecksum(PageOf(base)) != clean {
		t.Fatal("double flip did not restore the checksum")
	}
	if as.ReadU64(base) != 0xDEAD_BEEF {
		t.Fatal("flips corrupted unrelated bytes")
	}
}
