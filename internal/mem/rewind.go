package mem

import "fmt"

// Rewind domains give one request a byte-exact undo log over the address
// space, riding the soft-dirty infrastructure: while a domain is open, the
// first write to each page snapshots the page's pre-image and its prior
// dirty bit copy-on-write (an untouched page needs no snapshot — its bytes
// and tracking state are trivially unchanged, which is why lazy first-touch
// capture subsumes an eager dirty-set snapshot at domain entry).
// DiscardDomain restores every touched page — content, residency, and
// soft-dirty bit — so a faulting request rolls back exactly, including the
// delta-checksum baseline: a page that was clean before the request is clean
// again after the discard, and its restored bytes are the ones the cached
// checksum was verified against.
//
// Domains are a request-scoped, single-owner primitive: one domain per
// address space, never open across a preserve_exec (the driver closes it
// before any process-level restart).

// domainRecord is the pre-image of one touched page.
type domainRecord struct {
	// data is a copy of the frame's bytes at first touch; nil when the frame
	// was unmaterialized (read as zeros).
	data []byte
	// dirty is the frame's soft-dirty bit at first touch.
	dirty bool
	// existed reports whether a frame bookkeeping entry existed at all; when
	// false, discard deletes the entry instead of restoring into it.
	existed bool
}

// mapUndoKind tags one journaled mapping-level operation.
type mapUndoKind int

const (
	// undoMap records a Map performed inside the domain: discard unmaps it.
	undoMap mapUndoKind = iota
	// undoUnmap records an Unmap performed inside the domain: discard
	// re-inserts the mapping (its frames are restored by the page records —
	// Unmap touches every dropped page into the undo log first).
	undoUnmap
	// undoGrow records a Grow performed inside the domain: discard shrinks
	// the mapping back.
	undoGrow
)

// mapUndo is one journaled mapping-level operation.
type mapUndo struct {
	kind  mapUndoKind
	m     *Mapping
	extra int
}

// rewindDomain is the open domain's undo log: per-page pre-images plus a
// journal of mapping-level operations (heap growth maps new arenas and frees
// unmap large regions mid-request; rolling back the heap metadata without
// rolling back the mappings would leave the two out of sync).
type rewindDomain struct {
	pages   map[PageNum]domainRecord
	journal []mapUndo
}

// BeginRewindDomain opens a rewind domain. Only one may be open at a time.
func (as *AddressSpace) BeginRewindDomain() error {
	if as.domain != nil {
		return fmt.Errorf("mem: BeginRewindDomain: a domain is already open")
	}
	as.domain = &rewindDomain{pages: make(map[PageNum]domainRecord)}
	return nil
}

// DomainActive reports whether a rewind domain is open.
func (as *AddressSpace) DomainActive() bool { return as.domain != nil }

// DomainTouched returns how many pages the open domain has snapshotted.
func (as *AddressSpace) DomainTouched() int {
	if as.domain == nil {
		return 0
	}
	return len(as.domain.pages)
}

// CommitDomain closes the domain keeping every write, dropping the undo log.
// It returns the number of pages the domain had touched.
func (as *AddressSpace) CommitDomain() (int, error) {
	if as.domain == nil {
		return 0, fmt.Errorf("mem: CommitDomain: no open domain")
	}
	n := len(as.domain.pages)
	as.domain = nil
	return n, nil
}

// DiscardDomain closes the domain rolling every touched page back to its
// pre-image: bytes, residency, and soft-dirty bit. It returns the number of
// pages restored.
func (as *AddressSpace) DiscardDomain() (int, error) {
	if as.domain == nil {
		return 0, fmt.Errorf("mem: DiscardDomain: no open domain")
	}
	d := as.domain
	as.domain = nil // restores below must not re-enter the undo log
	// Mapping-level undo first, newest op first: mappings created inside the
	// domain are removed, removed ones re-inserted, grown ones shrunk. The
	// page restore below then rebuilds frame state against the restored
	// mapping layout.
	for i := len(d.journal) - 1; i >= 0; i-- {
		u := d.journal[i]
		switch u.kind {
		case undoMap:
			if err := as.Unmap(u.m.Start); err != nil {
				return 0, fmt.Errorf("mem: DiscardDomain: %w", err)
			}
		case undoUnmap:
			as.insert(u.m)
		case undoGrow:
			u.m.Pages -= u.extra
		}
	}
	for p, rec := range d.pages {
		if !rec.existed {
			delete(as.frames, p)
			continue
		}
		f := as.frames[p]
		if f == nil {
			f = &Frame{}
			as.frames[p] = f
		}
		f.Data = rec.data
		f.Dirty = rec.dirty
		// The restore rewrites the page's bytes, so it is a content mutation
		// from any generation observer's point of view — an observer that
		// recorded the mid-domain stamp must not conclude "unchanged" now
		// that the pre-image is back. The soft-dirty bit, by contrast, is
		// rolled back: it belongs to the preserve baseline, which the
		// pre-image bytes still match.
		as.stamp(f)
	}
	return len(d.pages), nil
}

// touch snapshots page p into the open domain's undo log before its first
// mutation. Every write path calls it ahead of the write; it is a no-op when
// no domain is open or the page was already captured.
func (as *AddressSpace) touch(p PageNum) {
	if as.domain == nil {
		return
	}
	if _, done := as.domain.pages[p]; done {
		return
	}
	rec := domainRecord{}
	if f, ok := as.frames[p]; ok {
		rec.existed = true
		rec.dirty = f.Dirty
		if f.Data != nil {
			rec.data = append([]byte(nil), f.Data...)
		}
	}
	as.domain.pages[p] = rec
}
