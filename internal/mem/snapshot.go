package mem

import (
	"fmt"
	"sync"
)

// SnapshotStore manages MVCC versions of one address space so concurrent
// readers can serve lock-free off an immutable view while a single writer
// advances the next version (after gostore's llrb/bogn snapshot lifecycle).
//
// Commit freezes the current contents into a SnapshotVersion whose view is a
// plain *AddressSpace built from *fresh* Frame copies — never aliases of the
// live frames — so later writes, PreserveExec page moves, or rewind-domain
// restores on the live space can not tear a published snapshot. Pages whose
// write-generation stamp is unchanged since the previous version share that
// version's frozen frame instead of being re-copied, so commit cost is
// proportional to the pages written since the last commit, not to the whole
// space.
//
// Open returns the latest committed version in O(1) (a refcount bump under
// the store mutex; the mutex handoff is also the happens-before edge that
// publishes the frozen frames to reader goroutines). Release drops the ref;
// a superseded version retires — its frame table is dropped so preserved
// pages don't leak — the moment its last reader releases it. The latest
// version is always retained as the sharing base for the next Commit.
//
// One store is bound to one AddressSpace for its whole life. Within a single
// space, per-page generation stamps only ever increase, which is what makes
// share-by-generation sound; after a restart or migration installs a new
// address space the caller must create a fresh store (the first Commit then
// does a full copy).
type SnapshotStore struct {
	mu sync.Mutex
	as *AddressSpace

	latest  *SnapshotVersion
	live    []*SnapshotVersion // committed, not yet retired (includes latest)
	nextSeq uint64
	retired int
}

// SnapshotVersion is one immutable committed version.
type SnapshotVersion struct {
	seq  uint64
	view *AddressSpace
	// gens records every page's generation stamp at commit time (resident or
	// not), the basis for sharing unchanged pages with the next version.
	gens map[PageNum]uint64
	// maxGen is the highest generation visible at commit (write counter and
	// frame stamps both); no frame in a frozen view may ever exceed it.
	maxGen  uint64
	changed int
	refs    int
	retired bool
}

// NewSnapshotStore binds a store to one live address space.
func NewSnapshotStore(as *AddressSpace) *SnapshotStore {
	return &SnapshotStore{as: as}
}

// Space returns the live address space the store is bound to.
func (s *SnapshotStore) Space() *AddressSpace { return s.as }

// Commit freezes the current state of the space as a new version and returns
// it. Must be called from the writer (the space must be quiescent for the
// duration of the call). The previous latest retires immediately if no
// reader holds it.
func (s *SnapshotStore) Commit() *SnapshotVersion {
	s.mu.Lock()
	defer s.mu.Unlock()

	prev := s.latest
	s.nextSeq++
	v := &SnapshotVersion{
		seq:    s.nextSeq,
		view:   NewAddressSpace(),
		gens:   make(map[PageNum]uint64, len(s.as.frames)),
		maxGen: s.as.writeGen,
	}
	v.view.ASLRBase = s.as.ASLRBase

	for p, f := range s.as.frames {
		v.gens[p] = f.Gen
		if f.Gen > v.maxGen {
			v.maxGen = f.Gen
		}
		if prev != nil {
			if pg, ok := prev.gens[p]; ok && pg == f.Gen {
				// Unchanged since the previous version: share its frozen
				// frame. A missing view entry means the page was (and still
				// is) non-resident — residency can't change without a stamp.
				if pf, ok := prev.view.frames[p]; ok {
					v.view.frames[p] = pf
				}
				continue
			}
		}
		v.changed++
		if f.Data != nil {
			v.view.frames[p] = &Frame{
				Data: append([]byte(nil), f.Data...),
				Gen:  f.Gen,
			}
		}
		// Non-resident pages get no frame: the view reads them as zeros,
		// exactly like the live space.
	}
	for _, m := range s.as.mappings {
		nm := *m
		v.view.insert(&nm)
	}

	s.latest = v
	s.live = append(s.live, v)
	if prev != nil && prev.refs == 0 {
		s.retire(prev)
	}
	return v
}

// Open returns the latest committed version with a reference held, or nil if
// nothing has been committed yet. O(1). Safe to call from any goroutine.
func (s *SnapshotStore) Open() *SnapshotVersion {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest == nil {
		return nil
	}
	s.latest.refs++
	return s.latest
}

// Release drops one reference. A superseded version retires when its last
// reference goes; the latest version is retained as the next commit's
// sharing base. Safe to call from any goroutine.
func (s *SnapshotStore) Release(v *SnapshotVersion) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v.refs <= 0 {
		panic("mem: snapshot Release without matching Open")
	}
	v.refs--
	if v.refs == 0 && v != s.latest {
		s.retire(v)
	}
}

// retire drops a version's frame table and removes it from the live list.
// Caller holds s.mu.
func (s *SnapshotStore) retire(v *SnapshotVersion) {
	if v.retired {
		return
	}
	v.retired = true
	v.view = nil
	v.gens = nil
	for i, lv := range s.live {
		if lv == v {
			s.live = append(s.live[:i], s.live[i+1:]...)
			break
		}
	}
	s.retired++
}

// LiveVersions reports how many committed versions are still retained.
func (s *SnapshotStore) LiveVersions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// RetiredVersions reports how many versions have been retired over the
// store's life.
func (s *SnapshotStore) RetiredVersions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired
}

// RetainedPages counts the distinct frozen frames held across all live
// versions — the real memory cost of the version set (shared frames count
// once).
func (s *SnapshotStore) RetainedPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[*Frame]struct{})
	for _, v := range s.live {
		for _, f := range v.view.frames {
			seen[f] = struct{}{}
		}
	}
	return len(seen)
}

// View returns the frozen address space. Reads on it are pure and safe from
// any number of goroutines; it must never be written.
func (v *SnapshotVersion) View() *AddressSpace { return v.view }

// Seq is the version's commit sequence number (1 for the first commit).
func (v *SnapshotVersion) Seq() uint64 { return v.seq }

// MaxGen is the highest write-generation stamp visible at commit time.
func (v *SnapshotVersion) MaxGen() uint64 { return v.maxGen }

// Changed is the number of pages this commit copied fresh (its incremental
// cost; the rest were shared with the predecessor).
func (v *SnapshotVersion) Changed() int { return v.changed }

// CheckFrozen is the stale-snapshot oracle: every frame in the frozen view
// must carry a generation stamp no newer than the version's commit horizon.
// A violation means a live frame leaked into the view (a post-snapshot write
// became visible to readers).
func (v *SnapshotVersion) CheckFrozen() error {
	view := v.view
	if view == nil {
		return fmt.Errorf("mem: snapshot v%d already retired", v.seq)
	}
	for p, f := range view.frames {
		if f.Gen > v.maxGen {
			return fmt.Errorf("mem: snapshot v%d page %d gen %d exceeds commit horizon %d (live frame leaked into frozen view)",
				v.seq, p, f.Gen, v.maxGen)
		}
	}
	return nil
}
