package mem

import (
	"fmt"
	"testing"
)

const dirtyBase = VAddr(0x5000_0000)

func mapOne(t testing.TB, as *AddressSpace, start VAddr, pages int, name string) *Mapping {
	t.Helper()
	m, err := as.Map(start, pages, KindCustom, name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Every write path must set the soft-dirty bit of the page it touches, and
// reads must not.
func TestDirtyBitWritePaths(t *testing.T) {
	cases := []struct {
		name  string
		write func(as *AddressSpace, addr VAddr)
	}{
		{"WriteAt", func(as *AddressSpace, a VAddr) { as.WriteAt(a, []byte{1, 2, 3}) }},
		{"WriteU8", func(as *AddressSpace, a VAddr) { as.WriteU8(a, 7) }},
		{"WriteU32", func(as *AddressSpace, a VAddr) { as.WriteU32(a, 7) }},
		{"WriteU64", func(as *AddressSpace, a VAddr) { as.WriteU64(a, 7) }},
		{"WriteU64-straddle", func(as *AddressSpace, a VAddr) { as.WriteU64(a+PageSize-4, 0x0102030405060708) }},
		{"WritePtr", func(as *AddressSpace, a VAddr) { as.WritePtr(a, dirtyBase) }},
		{"Zero", func(as *AddressSpace, a VAddr) { as.WriteU8(a, 1); as.Zero(a, 16) }},
		{"FlipBit", func(as *AddressSpace, a VAddr) { as.FlipBit(a, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			as := NewAddressSpace()
			mapOne(t, as, dirtyBase, 2, "d")
			if n := as.DirtyPages(); n != 0 {
				t.Fatalf("fresh space has %d dirty pages", n)
			}
			tc.write(as, dirtyBase)
			if !as.PageDirty(PageOf(dirtyBase)) {
				t.Fatalf("%s did not set the dirty bit", tc.name)
			}
		})
	}

	// Reads leave everything clean.
	as := NewAddressSpace()
	mapOne(t, as, dirtyBase, 2, "d")
	as.ReadU8(dirtyBase)
	as.ReadU64(dirtyBase)
	as.ReadBytes(dirtyBase, 100)
	_ = as.PageChecksum(PageOf(dirtyBase))
	if n := as.DirtyPages(); n != 0 {
		t.Fatalf("reads dirtied %d pages", n)
	}
}

func TestDirtySetAndClear(t *testing.T) {
	as := NewAddressSpace()
	mapOne(t, as, dirtyBase, 8, "d")
	as.WriteU8(dirtyBase+0*PageSize, 1)
	as.WriteU8(dirtyBase+3*PageSize, 1)
	as.WriteU8(dirtyBase+7*PageSize, 1)

	want := []PageNum{PageOf(dirtyBase), PageOf(dirtyBase) + 3, PageOf(dirtyBase) + 7}
	got := as.DirtySet()
	if len(got) != len(want) {
		t.Fatalf("DirtySet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DirtySet = %v, want %v", got, want)
		}
	}
	if n := as.DirtyPagesIn(dirtyBase, 4); n != 2 {
		t.Fatalf("DirtyPagesIn(first 4) = %d, want 2", n)
	}

	as.ClearDirty(dirtyBase, 4)
	if as.PageDirty(PageOf(dirtyBase)) || as.PageDirty(PageOf(dirtyBase)+3) {
		t.Fatal("ClearDirty left bits in range set")
	}
	if !as.PageDirty(PageOf(dirtyBase) + 7) {
		t.Fatal("ClearDirty cleared a bit outside its range")
	}
	as.ClearAllDirty()
	if n := as.DirtyPages(); n != 0 {
		t.Fatalf("ClearAllDirty left %d dirty pages", n)
	}

	// Re-dirtying after a clear works (the baseline advances, tracking does not stop).
	as.WriteU8(dirtyBase+3*PageSize, 2)
	if !as.PageDirty(PageOf(dirtyBase) + 3) {
		t.Fatal("write after ClearAllDirty did not re-set the bit")
	}
}

// Regression: Grow must reject mappings the address space does not own —
// growing a stale or foreign *Mapping used to corrupt the sorted
// non-overlapping invariant silently.
func TestGrowRejectsForeignMapping(t *testing.T) {
	as := NewAddressSpace()
	m := mapOne(t, as, dirtyBase, 2, "own")

	other := NewAddressSpace()
	foreign := mapOne(t, other, dirtyBase, 2, "foreign")
	if err := as.Grow(foreign, 1); err == nil {
		t.Fatal("Grow accepted a mapping owned by another address space")
	}

	// A stale mapping from before an Unmap is just as foreign.
	if err := as.Unmap(dirtyBase); err != nil {
		t.Fatal(err)
	}
	if err := as.Grow(m, 1); err == nil {
		t.Fatal("Grow accepted a stale mapping after Unmap")
	}
	if m.Pages != 2 {
		t.Fatalf("rejected Grow still mutated the mapping: %d pages", m.Pages)
	}

	// The legitimate path still works.
	m2 := mapOne(t, as, dirtyBase, 2, "fresh")
	if err := as.Grow(m2, 3); err != nil {
		t.Fatalf("Grow of an owned mapping failed: %v", err)
	}
	if m2.Pages != 5 {
		t.Fatalf("Grow: %d pages, want 5", m2.Pages)
	}
}

// Regression: zeroing a whole page releases its frame back to unmaterialized
// (shrinking ResidentPages and the checksum working set) while keeping the
// page in the dirty set — its content did change.
func TestZeroReleasesFullyZeroedFrames(t *testing.T) {
	as := NewAddressSpace()
	mapOne(t, as, dirtyBase, 4, "z")
	for i := 0; i < 4; i++ {
		as.WriteU64(dirtyBase+VAddr(i)*PageSize+128, 0xFFFF)
	}
	if got := as.ResidentPages(); got != 4 {
		t.Fatalf("ResidentPages = %d, want 4", got)
	}
	as.ClearAllDirty()

	// A large clear spanning three pages releases all three.
	as.Zero(dirtyBase, 3*PageSize)
	if got := as.ResidentPages(); got != 1 {
		t.Fatalf("ResidentPages after Zero = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		p := PageOf(dirtyBase) + PageNum(i)
		if as.PageResident(p) {
			t.Fatalf("page %d still resident after full-page zero", i)
		}
		if !as.PageDirty(p) {
			t.Fatalf("page %d lost its dirty bit on release", i)
		}
		if got := as.PageChecksum(p); got != Checksum(make([]byte, PageSize)) {
			t.Fatalf("page %d checksum %#x, want zero page", i, got)
		}
	}

	// A partial zero that leaves nonzero bytes keeps the frame.
	as.Zero(dirtyBase+3*PageSize, 64)
	if !as.PageResident(PageOf(dirtyBase) + 3) {
		t.Fatal("partial zero released a frame with live bytes")
	}
	// But a partial zero that happens to clear the last nonzero bytes releases it.
	as.Zero(dirtyBase+3*PageSize+96, 64)
	if as.PageResident(PageOf(dirtyBase) + 3) {
		t.Fatal("frame left resident although every byte reads zero")
	}
	if got := as.ReadU64(dirtyBase + 3*PageSize + 128); got != 0 {
		t.Fatalf("released page reads %#x, want 0", got)
	}
}

// Dirty bits ride the frames through MovePages/UnmovePages and are duplicated
// by CopyPages and Clone.
func TestDirtyBitTransfer(t *testing.T) {
	as := NewAddressSpace()
	mapOne(t, as, dirtyBase, 4, "src")
	as.WriteU64(dirtyBase, 1)            // page 0: dirty
	as.WriteU64(dirtyBase+2*PageSize, 2) // page 2: dirty, then cleaned
	as.ClearDirty(dirtyBase+2*PageSize, 1)

	dst := NewAddressSpace()
	if _, err := as.MovePages(dst, dirtyBase, 4); err != nil {
		t.Fatal(err)
	}
	if !dst.PageDirty(PageOf(dirtyBase)) {
		t.Fatal("MovePages dropped a dirty bit")
	}
	if dst.PageDirty(PageOf(dirtyBase) + 2) {
		t.Fatal("MovePages invented a dirty bit on a cleaned page")
	}

	// UnmovePages hands the bits back (including one set while in dst).
	dst.FlipBit(dirtyBase+2*PageSize+7, 1)
	dst.UnmovePages(as, dirtyBase, 4)
	if !as.PageDirty(PageOf(dirtyBase)) || !as.PageDirty(PageOf(dirtyBase)+2) {
		t.Fatal("UnmovePages lost dirty bits on rollback")
	}

	// CopyPages and Clone duplicate the tracking state.
	cp := NewAddressSpace()
	if _, err := as.CopyPages(cp, dirtyBase, 4, KindCustom, "cp"); err != nil {
		t.Fatal(err)
	}
	cl := as.Clone()
	for i := 0; i < 4; i++ {
		p := PageOf(dirtyBase) + PageNum(i)
		if cp.PageDirty(p) != as.PageDirty(p) {
			t.Fatalf("CopyPages dirty bit mismatch on page %d", i)
		}
		if cl.PageDirty(p) != as.PageDirty(p) {
			t.Fatalf("Clone dirty bit mismatch on page %d", i)
		}
	}
}

// BenchmarkMapOverlapCheck pins the satellite fix: Map's overlap check is a
// binary search, so building n mappings is O(n log n), not O(n²).
func BenchmarkMapOverlapCheck(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("mappings=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				as := NewAddressSpace()
				for j := 0; j < n; j++ {
					// Two-page stride leaves a gap so every Map exercises the
					// overlap probe against a fully populated sorted slice.
					start := dirtyBase + VAddr(j)*2*PageSize
					if _, err := as.Map(start, 1, KindMmap, "m"); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDirtyTrackingWrite measures the per-write overhead of soft-dirty
// maintenance on the hottest store path.
func BenchmarkDirtyTrackingWrite(b *testing.B) {
	as := NewAddressSpace()
	mapOne(b, as, dirtyBase, 64, "w")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.WriteU64(dirtyBase+VAddr(i%(64*PageSize/8))*8, uint64(i))
	}
}
