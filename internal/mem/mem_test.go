package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, as *AddressSpace, start VAddr, pages int, kind Kind, name string) *Mapping {
	t.Helper()
	m, err := as.Map(start, pages, kind, name)
	if err != nil {
		t.Fatalf("Map(%#x,%d): %v", uint64(start), pages, err)
	}
	return m
}

func TestMapBasics(t *testing.T) {
	as := NewAddressSpace()
	m := mustMap(t, as, 0x1000, 4, KindMmap, "a")
	if m.End() != 0x5000 || m.Len() != 4*PageSize {
		t.Fatalf("mapping extent wrong: end=%#x len=%d", uint64(m.End()), m.Len())
	}
	if !as.Mapped(0x1000) || !as.Mapped(0x4fff) || as.Mapped(0x5000) || as.Mapped(0xfff) {
		t.Fatal("Mapped() boundaries wrong")
	}
	if as.MappedPages() != 4 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}
}

func TestMapErrors(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x1001, 1, KindMmap, "unaligned"); err == nil {
		t.Fatal("unaligned Map succeeded")
	}
	if _, err := as.Map(0x1000, 0, KindMmap, "empty"); err == nil {
		t.Fatal("zero-length Map succeeded")
	}
	if _, err := as.Map(0, 1, KindMmap, "zero"); err == nil {
		t.Fatal("page-zero Map succeeded")
	}
	mustMap(t, as, 0x1000, 4, KindMmap, "a")
	if _, err := as.Map(0x3000, 4, KindMmap, "overlap"); err == nil {
		t.Fatal("overlapping Map succeeded")
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 2, KindMmap, "a")
	as.WriteU64(0x1000, 42)
	if err := as.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if as.Mapped(0x1000) {
		t.Fatal("still mapped after Unmap")
	}
	if err := as.Unmap(0x1000); err == nil {
		t.Fatal("double Unmap succeeded")
	}
	// Remapping the range must read zeros (frames were dropped).
	mustMap(t, as, 0x1000, 2, KindMmap, "b")
	if v := as.ReadU64(0x1000); v != 0 {
		t.Fatalf("stale frame survived unmap: %d", v)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 4, KindMmap, "a")
	data := []byte("hello, phoenix")
	as.WriteAt(0x1100, data)
	got := as.ReadBytes(0x1100, len(data))
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %q", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 2, KindMmap, "a")
	// Write across the page boundary at 0x2000.
	addr := VAddr(0x2000 - 3)
	as.WriteU64(addr, 0x1122334455667788)
	if got := as.ReadU64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page u64 = %#x", got)
	}
	buf := make([]byte, PageSize+100)
	for i := range buf {
		buf[i] = byte(i)
	}
	as.WriteAt(0x1000, buf)
	if !bytes.Equal(as.ReadBytes(0x1000, len(buf)), buf) {
		t.Fatal("cross-page bulk round trip failed")
	}
}

func TestZeroFill(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 1, KindMmap, "a")
	// Untouched mapped memory reads as zero.
	if v := as.ReadU64(0x1800); v != 0 {
		t.Fatalf("untouched page reads %d", v)
	}
	as.WriteAt(0x1000, []byte{1, 2, 3, 4})
	as.Zero(0x1000, 4)
	if !bytes.Equal(as.ReadBytes(0x1000, 4), []byte{0, 0, 0, 0}) {
		t.Fatal("Zero did not clear bytes")
	}
}

func TestFaultPanics(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 1, KindMmap, "a")
	cases := []struct {
		name string
		fn   func()
	}{
		{"read unmapped", func() { as.ReadU64(0x9000) }},
		{"write unmapped", func() { as.WriteU64(0x9000, 1) }},
		{"read null", func() { as.ReadU8(NullPtr) }},
		{"read straddles end", func() { as.ReadBytes(0x1ffc, 8) }},
		{"bulk write past end", func() { as.WriteAt(0x1f00, make([]byte, 512)) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic", tc.name)
					return
				}
				if _, ok := r.(*Fault); !ok {
					t.Errorf("%s: panic value %T, want *Fault", tc.name, r)
				}
			}()
			tc.fn()
		}()
	}
}

func TestContiguousMappingsSpanAccess(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 1, KindMmap, "a")
	mustMap(t, as, 0x2000, 1, KindMmap, "b")
	as.WriteU64(0x1ffc, 0xdeadbeefcafef00d) // spans both mappings
	if got := as.ReadU64(0x1ffc); got != 0xdeadbeefcafef00d {
		t.Fatalf("adjacent-mapping access = %#x", got)
	}
}

func TestGrow(t *testing.T) {
	as := NewAddressSpace()
	m := mustMap(t, as, 0x1000, 1, KindBrk, "brk")
	if err := as.Grow(m, 2); err != nil {
		t.Fatal(err)
	}
	as.WriteU64(0x3000, 7)
	if as.ReadU64(0x3000) != 7 {
		t.Fatal("grown region not writable")
	}
	mustMap(t, as, 0x4000, 1, KindMmap, "blocker")
	if err := as.Grow(m, 1); err == nil {
		t.Fatal("Grow into a blocker succeeded")
	}
	if err := as.Grow(m, 0); err == nil {
		t.Fatal("Grow by zero succeeded")
	}
}

func TestMovePages(t *testing.T) {
	src := NewAddressSpace()
	dst := NewAddressSpace()
	mustMap(t, src, 0x1000, 4, KindMmap, "heap")
	src.WriteU64(0x1000, 111)
	src.WriteU64(0x3008, 222)

	moved, err := src.MovePages(dst, 0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4 {
		t.Fatalf("moved %d pages, want 4", moved)
	}
	if dst.ReadU64(0x1000) != 111 || dst.ReadU64(0x3008) != 222 {
		t.Fatal("moved data not readable in destination")
	}
	// Source frames are gone; source mapping still exists but pages were
	// detached — remaining reads see zeros.
	if src.ReadU64(0x1000) != 0 {
		t.Fatal("source retained frame after move")
	}
	if m := dst.FindMapping(0x1000); m == nil || m.Kind != KindMmap || m.Name != "heap" {
		t.Fatal("destination mapping metadata not mirrored")
	}
}

func TestMovePagesZeroCopy(t *testing.T) {
	src := NewAddressSpace()
	dst := NewAddressSpace()
	mustMap(t, src, 0x1000, 1, KindMmap, "a")
	src.WriteU8(0x1000, 9)
	f := src.frames[PageOf(0x1000)]
	if _, err := src.MovePages(dst, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if dst.frames[PageOf(0x1000)] != f {
		t.Fatal("MovePages copied the frame instead of moving the pointer")
	}
}

func TestMovePagesErrors(t *testing.T) {
	src := NewAddressSpace()
	dst := NewAddressSpace()
	mustMap(t, src, 0x1000, 1, KindMmap, "a")
	if _, err := src.MovePages(dst, 0x1000, 2); err == nil {
		t.Fatal("move past mapping succeeded")
	}
	mustMap(t, dst, 0x1000, 1, KindMmap, "busy")
	if _, err := src.MovePages(dst, 0x1000, 1); err == nil {
		t.Fatal("move into occupied destination succeeded")
	}
}

func TestCopyPages(t *testing.T) {
	src := NewAddressSpace()
	dst := NewAddressSpace()
	mustMap(t, src, 0x1000, 2, KindMmap, "a")
	src.WriteU64(0x1000, 5)
	copied, err := src.CopyPages(dst, 0x1000, 2, KindMmap, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if copied != 1 { // only one page materialized
		t.Fatalf("copied %d frames, want 1", copied)
	}
	if dst.ReadU64(0x1000) != 5 {
		t.Fatal("copy content wrong")
	}
	// Copies are independent.
	src.WriteU64(0x1000, 6)
	if dst.ReadU64(0x1000) != 5 {
		t.Fatal("copy aliases source frame")
	}
}

func TestResidentPages(t *testing.T) {
	as := NewAddressSpace()
	mustMap(t, as, 0x1000, 8, KindMmap, "a")
	if as.ResidentPages() != 0 {
		t.Fatal("fresh mapping has resident pages")
	}
	as.WriteU8(0x1000, 1)
	as.WriteU8(0x3000, 1)
	if as.ResidentPages() != 2 {
		t.Fatalf("ResidentPages = %d, want 2", as.ResidentPages())
	}
}

func TestPageHelpers(t *testing.T) {
	if PageOf(0x1fff) != 1 || PageOf(0x2000) != 2 {
		t.Fatal("PageOf wrong")
	}
	if PageBase(0x1fff) != 0x1000 {
		t.Fatal("PageBase wrong")
	}
	if PagesFor(0) != 0 || PagesFor(1) != 1 || PagesFor(PageSize) != 1 || PagesFor(PageSize+1) != 2 {
		t.Fatal("PagesFor wrong")
	}
}

// Property: any sequence of writes then reads round-trips through simulated
// memory exactly like through a flat byte array.
func TestQuickReadWriteEquivalence(t *testing.T) {
	const pages = 8
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		as := NewAddressSpace()
		if _, err := as.Map(0x1000, pages, KindMmap, "q"); err != nil {
			return false
		}
		shadow := make([]byte, pages*PageSize)
		for _, op := range ops {
			off := int(op.Off) % (pages*PageSize - 256)
			data := op.Data
			if len(data) > 256 {
				data = data[:256]
			}
			as.WriteAt(0x1000+VAddr(off), data)
			copy(shadow[off:], data)
		}
		return bytes.Equal(as.ReadBytes(0x1000, len(shadow)), shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MovePages preserves content byte-for-byte for arbitrary fills.
func TestQuickMovePreservesContent(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		src := NewAddressSpace()
		dst := NewAddressSpace()
		if _, err := src.Map(0x1000, 4, KindMmap, "q"); err != nil {
			return false
		}
		buf := make([]byte, 4*PageSize)
		for i := range buf {
			buf[i] = seed[i%len(seed)]
		}
		src.WriteAt(0x1000, buf)
		if _, err := src.MovePages(dst, 0x1000, 4); err != nil {
			return false
		}
		return bytes.Equal(dst.ReadBytes(0x1000, len(buf)), buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmovePagesRestoresSource(t *testing.T) {
	src := NewAddressSpace()
	dst := NewAddressSpace()
	const base = VAddr(0x4000)
	if _, err := src.Map(base, 3, KindCustom, "buf"); err != nil {
		t.Fatal(err)
	}
	src.WriteU64(base, 111)
	src.WriteU64(base+2*PageSize+8, 222)
	if _, err := src.MovePages(dst, base, 3); err != nil {
		t.Fatal(err)
	}
	// Source mappings survive a MovePages but the frames are gone: reads
	// come back as zeros — the half-gutted state UnmovePages must repair.
	if src.ReadU64(base) != 0 {
		t.Fatal("frames not moved out of source")
	}
	dst.UnmovePages(src, base, 3)
	if got := src.ReadU64(base); got != 111 {
		t.Fatalf("head value after rollback = %d, want 111", got)
	}
	if got := src.ReadU64(base + 2*PageSize + 8); got != 222 {
		t.Fatalf("tail value after rollback = %d, want 222", got)
	}
	if len(dst.Mappings()) != 0 || dst.ResidentPages() != 0 {
		t.Fatalf("destination not emptied: %d mappings, %d resident",
			len(dst.Mappings()), dst.ResidentPages())
	}
	// The range can be moved again after rollback (retry path).
	if _, err := src.MovePages(dst, base, 3); err != nil {
		t.Fatalf("re-move after rollback: %v", err)
	}
	if dst.ReadU64(base) != 111 {
		t.Fatal("re-move lost content")
	}
}

func TestUnmovePagesKeepsUnrelatedMappings(t *testing.T) {
	src := NewAddressSpace()
	dst := NewAddressSpace()
	if _, err := src.Map(0x4000, 1, KindCustom, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Map(0x8000, 1, KindCustom, "b"); err != nil {
		t.Fatal(err)
	}
	src.WriteU64(0x8000, 9)
	if _, err := src.MovePages(dst, 0x4000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := src.MovePages(dst, 0x8000, 1); err != nil {
		t.Fatal(err)
	}
	dst.UnmovePages(src, 0x4000, 1)
	// Only the rolled-back range leaves dst; the other move stays.
	if dst.ReadU64(0x8000) != 9 {
		t.Fatal("unrelated moved mapping dropped by rollback")
	}
	if dst.Mapped(0x4000) {
		t.Fatal("rolled-back mapping still present in destination")
	}
}
