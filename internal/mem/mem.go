// Package mem implements the simulated virtual-memory substrate that the
// PHOENIX reproduction runs on.
//
// An AddressSpace maps 4 KiB-page-aligned regions to physical Frames. Frames
// are allocated lazily on first write (an untouched mapped page reads as
// zeros, like anonymous memory). The key operation for PHOENIX is
// MovePages: transferring frame pointers — the page-table entries — from a
// dying address space into a fresh one with no data copy, which is the
// zero-copy transfer mechanism of §3.3.
//
// Accessing an unmapped address panics with *Fault. This mirrors a hardware
// page fault turning into SIGSEGV: application code that follows a dangling
// reference into discarded memory crashes, and the simulated kernel converts
// the panic into a signal (see internal/kernel).
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// VAddr is a simulated virtual address.
type VAddr uint64

// NullPtr is the canonical nil simulated pointer. Page zero is never mapped,
// so dereferencing NullPtr always faults.
const NullPtr VAddr = 0

// PageNum is a virtual page number (VAddr >> PageShift).
type PageNum uint64

// PageOf returns the page number containing addr.
func PageOf(addr VAddr) PageNum { return PageNum(addr >> PageShift) }

// PageBase returns the first address of the page containing addr.
func PageBase(addr VAddr) VAddr { return addr &^ (PageSize - 1) }

// PagesFor returns the number of pages needed to hold n bytes.
func PagesFor(n int) int { return (n + PageSize - 1) / PageSize }

// Fault describes an invalid simulated-memory access. It is used as a panic
// value; the kernel recovers it and delivers SIGSEGV.
type Fault struct {
	Addr VAddr
	Op   string // "read", "write", "map", "free"
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: fault: %s at %#x", f.Op, uint64(f.Addr))
}

// Kind labels what a mapping backs. It controls how the kernel and linker
// treat the region across a PHOENIX restart.
type Kind uint8

const (
	// KindBrk is the growing data segment managed by the heap's sbrk path.
	KindBrk Kind = iota
	// KindMmap is an anonymous mapping (heap arenas, large allocations).
	KindMmap
	// KindSection is a loaded binary section (.data/.bss/.phx.*).
	KindSection
	// KindStack is thread stack memory; always discarded on restart.
	KindStack
	// KindCustom is a user-managed preserved range (raw interface, §3.3).
	KindCustom
)

func (k Kind) String() string {
	switch k {
	case KindBrk:
		return "brk"
	case KindMmap:
		return "mmap"
	case KindSection:
		return "section"
	case KindStack:
		return "stack"
	case KindCustom:
		return "custom"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame is a physical page frame. Data is allocated on first write; a nil
// Data reads as zeros.
//
// Dirty is the frame's soft-dirty bit: set by every write path (including
// FlipBit, which models DMA/DRAM corruption that bypasses application-level
// store instrumentation but still goes through the MMU where soft-dirty
// lives), and cleared only by the preservation machinery after a verified
// commit. Because the bit lives on the frame, it travels with the frame
// through MovePages/UnmovePages and is duplicated by CopyPages/Clone.
// Gen is the frame's write-generation stamp: the value of the owning
// address space's monotonic write counter at the frame's last content
// mutation (writes, Zero, FlipBit, rewind-domain discard restores, and
// arrival via MovePages/CopyPages all count). Within one address space two
// distinct mutation events never share a stamp, so an observer that records
// PageGen(p) knows the page's bytes are unchanged for exactly as long as the
// stamp is. Live shard migration uses this to find its per-round delta
// without touching the preserve machinery's soft-dirty baseline.
type Frame struct {
	Data  []byte
	Dirty bool
	Gen   uint64
}

func (f *Frame) materialize() []byte {
	f.Dirty = true
	if f.Data == nil {
		f.Data = make([]byte, PageSize)
	}
	return f.Data
}

// Mapping describes one contiguous mapped region.
type Mapping struct {
	Start VAddr
	Pages int
	Kind  Kind
	Name  string
}

// End returns the first address past the mapping.
func (m *Mapping) End() VAddr { return m.Start + VAddr(m.Pages)*PageSize }

// Len returns the mapping length in bytes.
func (m *Mapping) Len() int { return m.Pages * PageSize }

// Contains reports whether addr falls inside the mapping.
func (m *Mapping) Contains(addr VAddr) bool {
	return addr >= m.Start && addr < m.End()
}

// AddressSpace is one process's simulated virtual memory.
type AddressSpace struct {
	frames   map[PageNum]*Frame
	mappings []*Mapping // sorted by Start, non-overlapping

	// domain is the open rewind domain's undo log, nil when none (rewind.go).
	domain *rewindDomain

	// writeGen is the monotonic write-generation counter stamped onto frames
	// at every content mutation (see Frame.Gen). It only ever increases, so a
	// stamp is never reused — not even when a frame entry is deleted and a
	// fresh one created at the same page number.
	writeGen uint64

	// ASLRBase is the randomized layout offset chosen at first startup and
	// reused across PHOENIX restarts (§3.3, ASLR compatibility).
	ASLRBase VAddr
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{frames: make(map[PageNum]*Frame)}
}

// Map creates a mapping of pages pages starting at the page-aligned start.
// It returns an error if start is unaligned, the length is non-positive, the
// range overlaps an existing mapping, or the range includes page zero.
func (as *AddressSpace) Map(start VAddr, pages int, kind Kind, name string) (*Mapping, error) {
	if start%PageSize != 0 {
		return nil, fmt.Errorf("mem: Map %s: unaligned start %#x", name, uint64(start))
	}
	if pages <= 0 {
		return nil, fmt.Errorf("mem: Map %s: non-positive length %d", name, pages)
	}
	if start == 0 {
		return nil, fmt.Errorf("mem: Map %s: page zero is reserved", name)
	}
	m := &Mapping{Start: start, Pages: pages, Kind: kind, Name: name}
	if ov := as.overlap(m.Start, m.End()); ov != nil {
		return nil, fmt.Errorf("mem: Map %s: [%#x,%#x) overlaps %s [%#x,%#x)",
			name, uint64(start), uint64(m.End()), ov.Name, uint64(ov.Start), uint64(ov.End()))
	}
	as.insert(m)
	if as.domain != nil {
		as.domain.journal = append(as.domain.journal, mapUndo{kind: undoMap, m: m})
	}
	return m, nil
}

// overlap returns any mapping intersecting [lo,hi). The mappings slice is
// sorted by Start and non-overlapping, so the first candidate is the first
// mapping whose end lies past lo; it intersects iff it starts before hi.
func (as *AddressSpace) overlap(lo, hi VAddr) *Mapping {
	i := sort.Search(len(as.mappings), func(i int) bool {
		return as.mappings[i].End() > lo
	})
	if i < len(as.mappings) && as.mappings[i].Start < hi {
		return as.mappings[i]
	}
	return nil
}

func (as *AddressSpace) insert(m *Mapping) {
	i := sort.Search(len(as.mappings), func(i int) bool {
		return as.mappings[i].Start >= m.Start
	})
	as.mappings = append(as.mappings, nil)
	copy(as.mappings[i+1:], as.mappings[i:])
	as.mappings[i] = m
}

// Unmap removes the mapping that starts exactly at start and drops its
// frames. It returns an error if no such mapping exists.
func (as *AddressSpace) Unmap(start VAddr) error {
	for i, m := range as.mappings {
		if m.Start == start {
			if as.domain != nil {
				// Snapshot every frame the unmap is about to drop, then
				// journal the mapping so a discard can re-insert it.
				for p := PageOf(m.Start); p < PageOf(m.End()); p++ {
					as.touch(p)
				}
				as.domain.journal = append(as.domain.journal, mapUndo{kind: undoUnmap, m: m})
			}
			for p := PageOf(m.Start); p < PageOf(m.End()); p++ {
				delete(as.frames, p)
			}
			as.mappings = append(as.mappings[:i], as.mappings[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("mem: Unmap: no mapping at %#x", uint64(start))
}

// Grow extends mapping m by extra pages (used by the sbrk path). The mapping
// must belong to this address space — growing a stale pointer from before an
// Unmap, or a mapping of a different space, would corrupt the sorted
// non-overlapping invariant — and the new range must not collide with another
// mapping.
func (as *AddressSpace) Grow(m *Mapping, extra int) error {
	if extra <= 0 {
		return fmt.Errorf("mem: Grow %s: non-positive extra %d", m.Name, extra)
	}
	i := sort.Search(len(as.mappings), func(i int) bool {
		return as.mappings[i].Start >= m.Start
	})
	if i >= len(as.mappings) || as.mappings[i] != m {
		return fmt.Errorf("mem: Grow %s: mapping [%#x,%#x) not owned by this address space",
			m.Name, uint64(m.Start), uint64(m.End()))
	}
	newEnd := m.End() + VAddr(extra)*PageSize
	if ov := as.overlap(m.End(), newEnd); ov != nil {
		return fmt.Errorf("mem: Grow %s: collides with %s", m.Name, ov.Name)
	}
	m.Pages += extra
	if as.domain != nil {
		as.domain.journal = append(as.domain.journal, mapUndo{kind: undoGrow, m: m, extra: extra})
	}
	return nil
}

// FindMapping returns the mapping containing addr, or nil.
func (as *AddressSpace) FindMapping(addr VAddr) *Mapping {
	i := sort.Search(len(as.mappings), func(i int) bool {
		return as.mappings[i].End() > addr
	})
	if i < len(as.mappings) && as.mappings[i].Contains(addr) {
		return as.mappings[i]
	}
	return nil
}

// Mappings returns the current mappings in address order. The returned slice
// is a copy; the *Mapping values are live.
func (as *AddressSpace) Mappings() []*Mapping {
	out := make([]*Mapping, len(as.mappings))
	copy(out, as.mappings)
	return out
}

// Mapped reports whether addr lies inside a mapping.
func (as *AddressSpace) Mapped(addr VAddr) bool { return as.FindMapping(addr) != nil }

// checkRange panics with *Fault unless [addr, addr+n) is fully mapped.
// n must be small enough that the range spans a bounded number of mappings;
// contiguous adjacent mappings are accepted.
func (as *AddressSpace) checkRange(addr VAddr, n int, op string) {
	end := addr + VAddr(n)
	cur := addr
	for cur < end {
		m := as.FindMapping(cur)
		if m == nil {
			panic(&Fault{Addr: cur, Op: op})
		}
		cur = m.End()
	}
	if n == 0 && !as.Mapped(addr) {
		panic(&Fault{Addr: addr, Op: op})
	}
}

// frame returns the frame for page p, allocating the bookkeeping entry (but
// not the data) on demand.
func (as *AddressSpace) frame(p PageNum) *Frame {
	f := as.frames[p]
	if f == nil {
		f = &Frame{}
		as.frames[p] = f
	}
	return f
}

// write returns page p's materialized data for mutation, stamping the frame
// with a fresh write generation first. Every byte-mutating path funnels
// through it (or stamps explicitly, as Zero and DiscardDomain do), which is
// what makes PageGen a sound change detector.
func (as *AddressSpace) write(p PageNum) []byte {
	f := as.frame(p)
	as.writeGen++
	f.Gen = as.writeGen
	return f.materialize()
}

// stamp assigns frame f a fresh write generation from this address space.
// Frames arriving from another address space (MovePages/CopyPages and their
// rollbacks) must be re-stamped: their old stamps were drawn from a different
// counter and could collide with generations this space already handed out.
func (as *AddressSpace) stamp(f *Frame) {
	as.writeGen++
	f.Gen = as.writeGen
}

// ReadAt copies len(buf) bytes at addr into buf. It panics with *Fault if
// any byte of the range is unmapped.
func (as *AddressSpace) ReadAt(addr VAddr, buf []byte) {
	as.checkRange(addr, len(buf), "read")
	off := 0
	for off < len(buf) {
		p := PageOf(addr + VAddr(off))
		pgOff := int((addr + VAddr(off)) % PageSize)
		n := min(PageSize-pgOff, len(buf)-off)
		if f := as.frames[p]; f != nil && f.Data != nil {
			copy(buf[off:off+n], f.Data[pgOff:pgOff+n])
		} else {
			for i := off; i < off+n; i++ {
				buf[i] = 0
			}
		}
		off += n
	}
}

// WriteAt copies buf into simulated memory at addr. It panics with *Fault if
// any byte of the range is unmapped.
func (as *AddressSpace) WriteAt(addr VAddr, buf []byte) {
	as.checkRange(addr, len(buf), "write")
	off := 0
	for off < len(buf) {
		p := PageOf(addr + VAddr(off))
		pgOff := int((addr + VAddr(off)) % PageSize)
		n := min(PageSize-pgOff, len(buf)-off)
		as.touch(p)
		data := as.write(p)
		copy(data[pgOff:pgOff+n], buf[off:off+n])
		off += n
	}
}

// ReadBytes returns a fresh copy of n bytes at addr.
func (as *AddressSpace) ReadBytes(addr VAddr, n int) []byte {
	buf := make([]byte, n)
	as.ReadAt(addr, buf)
	return buf
}

// Zero writes n zero bytes at addr. A frame left entirely zero is released
// back to the unmaterialized state (its bookkeeping entry and dirty bit
// remain), so large clears shrink the resident set instead of inflating the
// preserve/checksum working set with pages that read identically to untouched
// ones.
func (as *AddressSpace) Zero(addr VAddr, n int) {
	as.checkRange(addr, n, "write")
	off := 0
	for off < n {
		p := PageOf(addr + VAddr(off))
		pgOff := int((addr + VAddr(off)) % PageSize)
		cnt := min(PageSize-pgOff, n-off)
		if f := as.frames[p]; f != nil && f.Data != nil {
			as.touch(p)
			d := f.Data[pgOff : pgOff+cnt]
			for i := range d {
				d[i] = 0
			}
			f.Dirty = true
			as.stamp(f)
			if allZero(f.Data) {
				f.Data = nil
			}
		}
		off += cnt
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// ReadU8 reads one byte at addr.
func (as *AddressSpace) ReadU8(addr VAddr) byte {
	as.checkRange(addr, 1, "read")
	f := as.frames[PageOf(addr)]
	if f == nil || f.Data == nil {
		return 0
	}
	return f.Data[addr%PageSize]
}

// WriteU8 writes one byte at addr.
func (as *AddressSpace) WriteU8(addr VAddr, v byte) {
	as.checkRange(addr, 1, "write")
	as.touch(PageOf(addr))
	as.write(PageOf(addr))[addr%PageSize] = v
}

// ReadU64 reads a little-endian uint64 at addr (which may straddle pages).
func (as *AddressSpace) ReadU64(addr VAddr) uint64 {
	if addr%PageSize <= PageSize-8 {
		as.checkRange(addr, 8, "read")
		f := as.frames[PageOf(addr)]
		if f == nil || f.Data == nil {
			return 0
		}
		o := addr % PageSize
		d := f.Data
		return uint64(d[o]) | uint64(d[o+1])<<8 | uint64(d[o+2])<<16 | uint64(d[o+3])<<24 |
			uint64(d[o+4])<<32 | uint64(d[o+5])<<40 | uint64(d[o+6])<<48 | uint64(d[o+7])<<56
	}
	var buf [8]byte
	as.ReadAt(addr, buf[:])
	return uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
}

// WriteU64 writes a little-endian uint64 at addr.
func (as *AddressSpace) WriteU64(addr VAddr, v uint64) {
	if addr%PageSize <= PageSize-8 {
		as.checkRange(addr, 8, "write")
		as.touch(PageOf(addr))
		d := as.write(PageOf(addr))
		o := addr % PageSize
		d[o] = byte(v)
		d[o+1] = byte(v >> 8)
		d[o+2] = byte(v >> 16)
		d[o+3] = byte(v >> 24)
		d[o+4] = byte(v >> 32)
		d[o+5] = byte(v >> 40)
		d[o+6] = byte(v >> 48)
		d[o+7] = byte(v >> 56)
		return
	}
	var buf [8]byte
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
	buf[4] = byte(v >> 32)
	buf[5] = byte(v >> 40)
	buf[6] = byte(v >> 48)
	buf[7] = byte(v >> 56)
	as.WriteAt(addr, buf[:])
}

// ReadU32 reads a little-endian uint32 at addr.
func (as *AddressSpace) ReadU32(addr VAddr) uint32 {
	var buf [4]byte
	as.ReadAt(addr, buf[:])
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
}

// WriteU32 writes a little-endian uint32 at addr.
func (as *AddressSpace) WriteU32(addr VAddr, v uint32) {
	as.WriteAt(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// ReadPtr reads a simulated pointer stored at addr.
func (as *AddressSpace) ReadPtr(addr VAddr) VAddr { return VAddr(as.ReadU64(addr)) }

// WritePtr stores a simulated pointer at addr.
func (as *AddressSpace) WritePtr(addr VAddr, p VAddr) { as.WriteU64(addr, uint64(p)) }

// MovePages transfers the frames of [start, start+pages*PageSize) from as
// into dst — the zero-copy PTE move at the heart of preserve_exec. The
// region must be fully covered by mappings in as; equivalent mappings are
// created in dst (which must have the range free). It returns the number of
// page-table entries moved (including entries for untouched zero pages).
func (as *AddressSpace) MovePages(dst *AddressSpace, start VAddr, pages int) (int, error) {
	end := start + VAddr(pages)*PageSize
	// Validate full coverage first so we fail atomically.
	cur := start
	for cur < end {
		m := as.FindMapping(cur)
		if m == nil {
			return 0, fmt.Errorf("mem: MovePages: unmapped address %#x", uint64(cur))
		}
		cur = m.End()
	}
	if ov := dst.overlap(start, end); ov != nil {
		return 0, fmt.Errorf("mem: MovePages: destination overlap with %s", ov.Name)
	}
	// Create mappings in dst mirroring the source mappings clipped to range.
	cur = start
	for cur < end {
		m := as.FindMapping(cur)
		lo := max64(m.Start, start)
		hi := min64(m.End(), end)
		nm := &Mapping{Start: lo, Pages: int((hi - lo) / PageSize), Kind: m.Kind, Name: m.Name}
		dst.insert(nm)
		cur = m.End()
	}
	moved := 0
	for p := PageOf(start); p < PageOf(end); p++ {
		if f, ok := as.frames[p]; ok {
			dst.stamp(f)
			dst.frames[p] = f
			delete(as.frames, p)
		}
		moved++
	}
	return moved, nil
}

// UnmovePages reverses a MovePages call that transferred [start,
// start+pages*PageSize) from src into as: the frames are handed back to src —
// whose original mappings are still in place, since MovePages moves frames
// but never removes source mappings — and the mirror mappings MovePages
// created here are dropped. It is the kernel's rollback primitive for
// aborting a partially committed preserve_exec without leaving the dying
// process half-gutted.
func (as *AddressSpace) UnmovePages(src *AddressSpace, start VAddr, pages int) {
	end := start + VAddr(pages)*PageSize
	for p := PageOf(start); p < PageOf(end); p++ {
		if f, ok := as.frames[p]; ok {
			src.stamp(f)
			src.frames[p] = f
			delete(as.frames, p)
		}
	}
	kept := as.mappings[:0]
	for _, m := range as.mappings {
		if m.Start >= start && m.End() <= end {
			continue
		}
		kept = append(kept, m)
	}
	as.mappings = kept
}

// CopyPages copies the content of [start, start+pages*PageSize) from as into
// dst, creating a single mapping there. Unlike MovePages it duplicates the
// data (used by fork-style snapshots and partial-page preservation).
func (as *AddressSpace) CopyPages(dst *AddressSpace, start VAddr, pages int, kind Kind, name string) (int, error) {
	if _, err := dst.Map(start, pages, kind, name); err != nil {
		return 0, err
	}
	copied := 0
	for i := 0; i < pages; i++ {
		p := PageOf(start) + PageNum(i)
		if f, ok := as.frames[p]; ok {
			nf := dst.frame(p)
			nf.Dirty = f.Dirty // snapshot preserves tracking state, it is not a write
			dst.stamp(nf)      // but the generation is per-space: re-stamp on arrival
			if f.Data != nil {
				nf.Data = append([]byte(nil), f.Data...)
				copied++
			}
		}
	}
	return copied, nil
}

// Clone returns a deep copy of the address space: mappings and frame
// contents are duplicated so the copy is fully independent. Used by
// CRIU-style full-process snapshots.
func (as *AddressSpace) Clone() *AddressSpace {
	cp := NewAddressSpace()
	cp.ASLRBase = as.ASLRBase
	cp.writeGen = as.writeGen // faithful snapshot: stamps stay valid as a set
	for _, m := range as.mappings {
		nm := *m
		cp.insert(&nm)
	}
	for p, f := range as.frames {
		nf := &Frame{Dirty: f.Dirty, Gen: f.Gen}
		if f.Data != nil {
			nf.Data = append([]byte(nil), f.Data...)
		}
		cp.frames[p] = nf
	}
	return cp
}

// FNV-1a (64-bit) is the checksum preserve_exec stamps into the preserve
// info block for every transferred frame: cheap enough to run at crash time,
// and any single bit flip in a page changes the sum.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Checksum returns the 64-bit FNV-1a hash of data.
func Checksum(data []byte) uint64 {
	sum := uint64(fnvOffset64)
	for _, b := range data {
		sum ^= uint64(b)
		sum *= fnvPrime64
	}
	return sum
}

// zeroPageChecksum is Checksum of one untouched (all-zero) page, precomputed
// so checksumming sparse preserved ranges never materializes their frames.
var zeroPageChecksum = Checksum(make([]byte, PageSize))

// PageChecksum returns the FNV-1a checksum of page p's current contents.
// Unmaterialized frames (and unmapped pages) read as zeros, matching what
// ReadAt would observe.
func (as *AddressSpace) PageChecksum(p PageNum) uint64 {
	if f := as.frames[p]; f != nil && f.Data != nil {
		return Checksum(f.Data)
	}
	return zeroPageChecksum
}

// FlipBit inverts one bit of the byte at addr, materializing the frame if
// needed. It is the corruption primitive behind the kernel.preserve.corrupt
// fault-injection site: a simulated hardware/DMA bit flip that bypasses the
// store instrumentation application code routes through. It still sets the
// frame's soft-dirty bit — soft-dirty is an MMU property, not an
// instrumentation property — which is what lets delta checksums catch flips
// in pages the application never wrote: a "clean" page whose content changed
// is by definition corrupted, and it must re-enter the checksum walk.
func (as *AddressSpace) FlipBit(addr VAddr, bit uint) {
	as.checkRange(addr, 1, "write")
	as.touch(PageOf(addr))
	as.write(PageOf(addr))[addr%PageSize] ^= 1 << (bit % 8)
}

// PageGen returns page p's write-generation stamp; 0 means the page has
// never been mutated in this address space (it reads as zeros, or carries a
// pre-stamp snapshot). Equal stamps across two observations of the same
// address space guarantee the page's bytes did not change in between; a
// changed stamp says only that they may have. Migration delta rounds scan
// stamps (cheap) and re-hash only stamp-changed pages (expensive), so round
// cost tracks the write rate, not the shard size.
func (as *AddressSpace) PageGen(p PageNum) uint64 {
	if f := as.frames[p]; f != nil {
		return f.Gen
	}
	return 0
}

// PageDirty reports whether page p carries a set soft-dirty bit.
func (as *AddressSpace) PageDirty(p PageNum) bool {
	f := as.frames[p]
	return f != nil && f.Dirty
}

// PageResident reports whether page p has materialized data. A non-resident
// page reads as zeros and checksums as the zero page in O(1).
func (as *AddressSpace) PageResident(p PageNum) bool {
	f := as.frames[p]
	return f != nil && f.Data != nil
}

// DirtySet returns the numbers of every dirty page, in ascending order.
func (as *AddressSpace) DirtySet() []PageNum {
	var out []PageNum
	for p, f := range as.frames {
		if f.Dirty {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyPages returns the number of dirty pages.
func (as *AddressSpace) DirtyPages() int {
	n := 0
	for _, f := range as.frames {
		if f.Dirty {
			n++
		}
	}
	return n
}

// DirtyPagesIn returns how many pages of [start, start+pages*PageSize) are
// dirty.
func (as *AddressSpace) DirtyPagesIn(start VAddr, pages int) int {
	n := 0
	for p := PageOf(start); p < PageOf(start)+PageNum(pages); p++ {
		if as.PageDirty(p) {
			n++
		}
	}
	return n
}

// DirtySetIn returns the dirty pages of [start, start+pages*PageSize) in
// ascending order. A clean range returns nil — not a zero-length allocated
// slice — so the hot preserve loop and rewind-domain entry produce no garbage
// when there is nothing to report.
func (as *AddressSpace) DirtySetIn(start VAddr, pages int) []PageNum {
	var out []PageNum
	for p := PageOf(start); p < PageOf(start)+PageNum(pages); p++ {
		if as.PageDirty(p) {
			out = append(out, p)
		}
	}
	return out
}

// ClearDirty clears the soft-dirty bits of [start, start+pages*PageSize).
// Only the preservation machinery may call it, and only after a verified
// commit: clearing establishes "content matches the recorded checksums" as
// the new baseline, so clearing without having recorded (and verified) the
// content breaks the delta-checksum invariant.
func (as *AddressSpace) ClearDirty(start VAddr, pages int) {
	for p := PageOf(start); p < PageOf(start)+PageNum(pages); p++ {
		if f := as.frames[p]; f != nil {
			f.Dirty = false
		}
	}
}

// ClearAllDirty clears every soft-dirty bit in the address space. Same
// contract as ClearDirty; used by whole-process incremental checkpoints.
func (as *AddressSpace) ClearAllDirty() {
	for _, f := range as.frames {
		f.Dirty = false
	}
}

// ResidentPages returns the number of frames with materialized data.
func (as *AddressSpace) ResidentPages() int {
	n := 0
	for _, f := range as.frames {
		if f.Data != nil {
			n++
		}
	}
	return n
}

// MappedPages returns the total number of mapped pages.
func (as *AddressSpace) MappedPages() int {
	n := 0
	for _, m := range as.mappings {
		n += m.Pages
	}
	return n
}

// MappedBytes returns the total mapped size in bytes.
func (as *AddressSpace) MappedBytes() int64 { return int64(as.MappedPages()) * PageSize }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b VAddr) VAddr {
	if a > b {
		return a
	}
	return b
}

func min64(a, b VAddr) VAddr {
	if a < b {
		return a
	}
	return b
}
