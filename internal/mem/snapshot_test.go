package mem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

const snapBase = VAddr(0x5000_0000)

func newSnapSpace(t testing.TB, pages int) *AddressSpace {
	t.Helper()
	as := NewAddressSpace()
	if _, err := as.Map(snapBase, pages, KindCustom, "snap"); err != nil {
		t.Fatal(err)
	}
	return as
}

func TestSnapshotIsolatesLaterWrites(t *testing.T) {
	as := newSnapSpace(t, 4)
	as.WriteAt(snapBase, []byte("version-one"))
	st := NewSnapshotStore(as)
	v1 := st.Commit()

	as.WriteAt(snapBase, []byte("version-TWO"))
	got := v1.View().ReadBytes(snapBase, 11)
	if !bytes.Equal(got, []byte("version-one")) {
		t.Fatalf("snapshot observed a post-commit write: %q", got)
	}
	if err := v1.CheckFrozen(); err != nil {
		t.Fatal(err)
	}

	v2 := st.Commit()
	if got := v2.View().ReadBytes(snapBase, 11); !bytes.Equal(got, []byte("version-TWO")) {
		t.Fatalf("new version missing the write: %q", got)
	}
	if got := v1.View(); got != nil {
		t.Fatal("superseded unreferenced version was not retired at commit")
	}
}

func TestSnapshotSharesUnchangedPages(t *testing.T) {
	const pages = 16
	as := newSnapSpace(t, pages)
	for i := 0; i < pages; i++ {
		as.WriteU64(snapBase+VAddr(i)*PageSize, uint64(i)+1)
	}
	st := NewSnapshotStore(as)
	v1 := st.Commit()
	if v1.Changed() != pages {
		t.Fatalf("first commit copied %d pages, want %d", v1.Changed(), pages)
	}

	// Hold v1 so both versions stay live, touch one page, commit again.
	h := st.Open()
	as.WriteU64(snapBase+3*PageSize, 999)
	v2 := st.Commit()
	if v2.Changed() != 1 {
		t.Fatalf("incremental commit copied %d pages, want 1", v2.Changed())
	}
	if got := st.RetainedPages(); got != pages+1 {
		t.Fatalf("retained %d distinct frames, want %d (full set + one rewritten page)", got, pages+1)
	}
	if got := v1.View().ReadU64(snapBase + 3*PageSize); got != 4 {
		t.Fatalf("old version page changed: %d", got)
	}
	if got := v2.View().ReadU64(snapBase + 3*PageSize); got != 999 {
		t.Fatalf("new version missing write: %d", got)
	}
	st.Release(h)
	if live := st.LiveVersions(); live != 1 {
		t.Fatalf("%d live versions after release, want 1 (latest)", live)
	}
	if st.RetiredVersions() != 1 {
		t.Fatalf("retired %d versions, want 1", st.RetiredVersions())
	}
}

func TestSnapshotNonResidentReadsZero(t *testing.T) {
	as := newSnapSpace(t, 2)
	as.WriteAt(snapBase+PageSize, []byte{0xAA})
	st := NewSnapshotStore(as)
	v := st.Commit()
	if got := v.View().ReadBytes(snapBase, 8); !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("non-resident page read %x, want zeros", got)
	}
	// Zero releases residency on the live side; the snapshot keeps its bytes.
	as.Zero(snapBase+PageSize, PageSize)
	if got := v.View().ReadU8(snapBase + PageSize); got != 0xAA {
		t.Fatalf("snapshot lost its byte after live Zero: %#x", got)
	}
	v2 := st.Commit()
	if got := v2.View().ReadU8(snapBase + PageSize); got != 0 {
		t.Fatalf("post-Zero version reads %#x, want 0", got)
	}
}

func TestSnapshotReleasePanicsWithoutOpen(t *testing.T) {
	as := newSnapSpace(t, 1)
	st := NewSnapshotStore(as)
	v := st.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Open did not panic")
		}
	}()
	st.Release(v)
}

func TestSnapshotCheckFrozenCatchesLeakedFrame(t *testing.T) {
	as := newSnapSpace(t, 2)
	as.WriteU64(snapBase, 1)
	st := NewSnapshotStore(as)
	v := st.Commit()

	// Simulate the bug the oracle exists for: alias a live frame into the
	// frozen view, then write through the live space.
	p := PageOf(snapBase)
	v.view.frames[p] = as.frames[p]
	as.WriteU64(snapBase, 2)
	if err := v.CheckFrozen(); err == nil {
		t.Fatal("CheckFrozen missed a live frame aliased into the view")
	}
}

// TestSnapshotConcurrentReaders hammers Open/read/Release from many
// goroutines against a committing writer; run under -race this is the
// package-level half of the stale-snapshot battery. Each reader validates
// that the pair of values it observes is a consistent committed pair.
func TestSnapshotConcurrentReaders(t *testing.T) {
	as := newSnapSpace(t, 8)
	st := NewSnapshotStore(as)
	// The writer keeps two cells in lockstep; a torn snapshot shows up as a
	// mismatched pair.
	commit := func(n uint64) {
		as.WriteU64(snapBase, n)
		as.WriteU64(snapBase+7*PageSize, n)
		st.Commit()
	}
	commit(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := st.Open()
				a := v.View().ReadU64(snapBase)
				b := v.View().ReadU64(snapBase + 7*PageSize)
				if a != b {
					errs <- fmt.Errorf("torn snapshot: %d != %d", a, b)
				}
				if err := v.CheckFrozen(); err != nil {
					errs <- err
				}
				st.Release(v)
			}
		}()
	}
	for n := uint64(2); n < 200; n++ {
		commit(n)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if live := st.LiveVersions(); live != 1 {
		t.Fatalf("%d live versions after all readers released, want 1", live)
	}
	if got, want := st.RetainedPages(), 2; got != want {
		t.Fatalf("latest version retains %d frames, want %d", got, want)
	}
}

// FuzzSnapshotInterleave drives a random interleaving of writes, zeroes,
// commits, opens, and releases, and checks every still-held version
// round-trips byte-exactly against the plain map model captured at its
// commit — the MVCC store may share and retire frames however it likes, but
// a version's contents are immutable.
func FuzzSnapshotInterleave(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 7, 3, 4, 0, 20, 1, 9, 3, 4, 5, 0})
	f.Add([]byte{3, 4, 2, 30, 0, 1, 2, 3, 3, 4, 2, 0, 3, 4, 5, 1, 5, 0})
	f.Add(bytes.Repeat([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 12))

	f.Fuzz(func(t *testing.T, ops []byte) {
		const pages = 4
		as := newSnapSpace(t, pages)
		st := NewSnapshotStore(as)

		capture := func() [][]byte {
			out := make([][]byte, pages)
			for i := range out {
				out[i] = as.ReadBytes(snapBase+VAddr(i)*PageSize, PageSize)
			}
			return out
		}
		type held struct {
			v     *SnapshotVersion
			model [][]byte
		}
		var holds []held
		var lastModel [][]byte

		i := 0
		next := func() byte {
			if i < len(ops) {
				b := ops[i]
				i++
				return b
			}
			i++
			return 0
		}
		for i < len(ops) {
			switch next() % 6 {
			case 0, 1: // writes dominate the mix
				off := (int(next())<<8 | int(next())) % (pages*PageSize - 8)
				as.WriteU64(snapBase+VAddr(off), uint64(next())*0x9E3779B97F4A7C15+1)
			case 2:
				off := int(next()) * 37 % (pages*PageSize - 64)
				as.Zero(snapBase+VAddr(off), 64)
			case 3:
				st.Commit()
				lastModel = capture()
			case 4:
				if v := st.Open(); v != nil {
					holds = append(holds, held{v, lastModel})
				}
			case 5:
				if len(holds) > 0 {
					k := int(next()) % len(holds)
					st.Release(holds[k].v)
					holds = append(holds[:k], holds[k+1:]...)
				}
			}
		}

		for hi, h := range holds {
			if err := h.v.CheckFrozen(); err != nil {
				t.Fatal(err)
			}
			for pg := 0; pg < pages; pg++ {
				got := h.v.View().ReadBytes(snapBase+VAddr(pg)*PageSize, PageSize)
				if !bytes.Equal(got, h.model[pg]) {
					t.Fatalf("held version %d (seq %d) page %d diverged from the model captured at its commit",
						hi, h.v.Seq(), pg)
				}
			}
			st.Release(h.v)
		}
		if live := st.LiveVersions(); live > 1 {
			t.Fatalf("%d versions live after all releases, want at most the latest", live)
		}
		if st.RetainedPages() > pages {
			t.Fatalf("latest version retains %d frames for a %d-page space", st.RetainedPages(), pages)
		}
	})
}
