package mem

import (
	"bytes"
	"testing"
)

const rwBase = VAddr(0x40_0000)

func newRewindSpace(t testing.TB, pages int) *AddressSpace {
	t.Helper()
	as := NewAddressSpace()
	if _, err := as.Map(rwBase, pages, KindCustom, "rw"); err != nil {
		t.Fatalf("Map: %v", err)
	}
	return as
}

// snapshot captures the observable state of a page range: bytes, residency,
// dirty bits, and checksums.
type rwPageState struct {
	data     []byte
	resident bool
	dirty    bool
	sum      uint64
}

func snapshotRange(as *AddressSpace, pages int) []rwPageState {
	out := make([]rwPageState, pages)
	for i := 0; i < pages; i++ {
		p := PageOf(rwBase) + PageNum(i)
		out[i] = rwPageState{
			data:     as.ReadBytes(rwBase+VAddr(i)*PageSize, PageSize),
			resident: as.PageResident(p),
			dirty:    as.PageDirty(p),
			sum:      as.PageChecksum(p),
		}
	}
	return out
}

func requireState(t *testing.T, as *AddressSpace, want []rwPageState, what string) {
	t.Helper()
	got := snapshotRange(as, len(want))
	for i := range want {
		if !bytes.Equal(got[i].data, want[i].data) {
			t.Fatalf("%s: page %d bytes differ", what, i)
		}
		if got[i].resident != want[i].resident {
			t.Fatalf("%s: page %d residency %v, want %v", what, i, got[i].resident, want[i].resident)
		}
		if got[i].dirty != want[i].dirty {
			t.Fatalf("%s: page %d dirty %v, want %v", what, i, got[i].dirty, want[i].dirty)
		}
		if got[i].sum != want[i].sum {
			t.Fatalf("%s: page %d checksum %#x, want %#x", what, i, got[i].sum, want[i].sum)
		}
	}
}

func TestRewindDomainDiscardExact(t *testing.T) {
	as := newRewindSpace(t, 8)
	// Mixed pre-state: page 0 resident+clean, page 1 resident+dirty,
	// page 2 untouched, page 3 zero-released (entry, no data).
	as.WriteU64(rwBase, 0x1111)
	as.ClearDirty(rwBase, 1)
	as.WriteU64(rwBase+PageSize, 0x2222)
	as.WriteU64(rwBase+3*PageSize, 0x3333)
	as.Zero(rwBase+3*PageSize, PageSize)

	pre := snapshotRange(as, 8)
	if err := as.BeginRewindDomain(); err != nil {
		t.Fatal(err)
	}
	// Touch every flavour of page, plus sub-page and straddling writes.
	as.WriteU64(rwBase+8, 0xAAAA)
	as.WriteU8(rwBase+PageSize+5, 0xBB)
	as.WriteAt(rwBase+2*PageSize-4, []byte{1, 2, 3, 4, 5, 6, 7, 8}) // straddles 1→2
	as.WriteU64(rwBase+3*PageSize, 0xCCCC)
	as.FlipBit(rwBase+4*PageSize+17, 3)
	as.Zero(rwBase, 16)
	if n := as.DomainTouched(); n == 0 {
		t.Fatalf("DomainTouched = 0 after writes")
	}
	n, err := as.DiscardDomain()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("DiscardDomain restored 0 pages")
	}
	requireState(t, as, pre, "after discard")
	if as.DomainActive() {
		t.Fatal("domain still active after discard")
	}
}

// TestRewindDomainMappingRollback covers the mapping-level journal: a Map, a
// Grow, and an Unmap performed inside the domain are all undone by discard,
// so heap metadata rolled back by the page records stays in sync with the
// mapping layout.
func TestRewindDomainMappingRollback(t *testing.T) {
	as := newRewindSpace(t, 2)
	const victim = rwBase + VAddr(0x10_0000)
	if _, err := as.Map(victim, 2, KindMmap, "victim"); err != nil {
		t.Fatal(err)
	}
	as.WriteU64(victim, 0xBEEF)
	brk := as.FindMapping(rwBase)

	if err := as.BeginRewindDomain(); err != nil {
		t.Fatal(err)
	}
	const fresh = rwBase + VAddr(0x20_0000)
	if _, err := as.Map(fresh, 1, KindMmap, "fresh"); err != nil {
		t.Fatal(err)
	}
	as.WriteU64(fresh, 0xF00D)
	if err := as.Grow(brk, 3); err != nil {
		t.Fatal(err)
	}
	as.WriteU64(rwBase+3*PageSize, 0xD00F) // write into the grown tail
	if err := as.Unmap(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := as.DiscardDomain(); err != nil {
		t.Fatal(err)
	}

	if as.Mapped(fresh) {
		t.Fatal("mapping created inside the domain survived discard")
	}
	if got := brk.Pages; got != 2 {
		t.Fatalf("grown mapping not shrunk back: %d pages, want 2", got)
	}
	if !as.Mapped(victim) {
		t.Fatal("mapping unmapped inside the domain not restored")
	}
	if got := as.ReadU64(victim); got != 0xBEEF {
		t.Fatalf("restored mapping lost its bytes: %#x", got)
	}
	// A fresh Map at the same address must succeed after rollback (this is
	// exactly the heap's next-map reuse pattern).
	if _, err := as.Map(fresh, 1, KindMmap, "fresh2"); err != nil {
		t.Fatalf("re-Map after rollback: %v", err)
	}
}

func TestRewindDomainCommitKeepsWrites(t *testing.T) {
	as := newRewindSpace(t, 2)
	if err := as.BeginRewindDomain(); err != nil {
		t.Fatal(err)
	}
	as.WriteU64(rwBase, 0xFEED)
	if _, err := as.CommitDomain(); err != nil {
		t.Fatal(err)
	}
	if got := as.ReadU64(rwBase); got != 0xFEED {
		t.Fatalf("committed write lost: %#x", got)
	}
	if !as.PageDirty(PageOf(rwBase)) {
		t.Fatal("committed write lost its dirty bit")
	}
}

func TestRewindDomainSingleOwner(t *testing.T) {
	as := newRewindSpace(t, 1)
	if err := as.BeginRewindDomain(); err != nil {
		t.Fatal(err)
	}
	if err := as.BeginRewindDomain(); err == nil {
		t.Fatal("nested BeginRewindDomain succeeded")
	}
	if _, err := as.CommitDomain(); err != nil {
		t.Fatal(err)
	}
	if _, err := as.CommitDomain(); err == nil {
		t.Fatal("CommitDomain with no open domain succeeded")
	}
	if _, err := as.DiscardDomain(); err == nil {
		t.Fatal("DiscardDomain with no open domain succeeded")
	}
}

// FuzzRewindDomainRoundTrip drives random writes inside a domain and asserts
// the discard restores the byte-exact pre-state, including dirty bits and
// page checksums.
func FuzzRewindDomainRoundTrip(f *testing.F) {
	f.Add([]byte{0x01, 0x20, 0x03}, []byte{0x11, 0x40, 0x07, 0x90, 0x02})
	f.Add([]byte{}, []byte{0xFF, 0x00, 0x13})
	f.Add([]byte{0x55, 0xAA}, []byte{})
	f.Fuzz(func(t *testing.T, warm, ops []byte) {
		const pages = 4
		as := NewAddressSpace()
		if _, err := as.Map(rwBase, pages, KindCustom, "fuzz"); err != nil {
			t.Fatal(err)
		}
		span := VAddr(pages * PageSize)
		// Pre-populate from the warm bytes, then clean a prefix so the
		// domain crosses clean and dirty pages alike.
		for i := 0; i+1 < len(warm); i += 2 {
			as.WriteU8(rwBase+VAddr(warm[i])*97%span, warm[i+1])
		}
		as.ClearDirty(rwBase, pages/2)

		pre := snapshotRange(as, pages)
		if err := as.BeginRewindDomain(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			addr := rwBase + VAddr(ops[i])*131%span
			switch ops[i+1] % 5 {
			case 0:
				as.WriteU8(addr, ops[i+1])
			case 1:
				as.WriteU64(PageBase(addr), uint64(ops[i+1])<<8|uint64(ops[i]))
			case 2:
				as.WriteAt(addr, []byte{ops[i], ops[i+1], ops[i] ^ ops[i+1]})
			case 3:
				as.FlipBit(addr, uint(ops[i]))
			case 4:
				as.Zero(PageBase(addr), PageSize)
			}
		}
		if _, err := as.DiscardDomain(); err != nil {
			t.Fatal(err)
		}
		post := snapshotRange(as, pages)
		for i := range pre {
			if !bytes.Equal(post[i].data, pre[i].data) {
				t.Fatalf("page %d bytes differ after discard", i)
			}
			if post[i].resident != pre[i].resident {
				t.Fatalf("page %d residency %v, want %v", i, post[i].resident, pre[i].resident)
			}
			if post[i].dirty != pre[i].dirty {
				t.Fatalf("page %d dirty %v, want %v", i, post[i].dirty, pre[i].dirty)
			}
			if post[i].sum != pre[i].sum {
				t.Fatalf("page %d checksum %#x, want %#x", i, post[i].sum, pre[i].sum)
			}
		}
	})
}

// TestDirtySetInCleanRangeAllocs is the satellite micro-bench assertion: a
// clean range must report nil with zero allocations — the hot preserve loop
// calls this per preserved range, and a garbage zero-length slice per call
// adds up.
func TestDirtySetInCleanRangeAllocs(t *testing.T) {
	as := newRewindSpace(t, 64)
	as.WriteU64(rwBase, 1)
	as.ClearDirty(rwBase, 64)
	if got := as.DirtySetIn(rwBase, 64); got != nil {
		t.Fatalf("DirtySetIn on clean range = %v, want nil", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if as.DirtySetIn(rwBase, 64) != nil {
			t.Fatal("range became dirty")
		}
	})
	if allocs != 0 {
		t.Fatalf("DirtySetIn on clean range allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkDirtySetInClean(b *testing.B) {
	as := newRewindSpace(b, 1024)
	for i := 0; i < 1024; i++ {
		as.WriteU8(rwBase+VAddr(i)*PageSize, 1)
	}
	as.ClearDirty(rwBase, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as.DirtySetIn(rwBase, 1024) != nil {
			b.Fatal("range became dirty")
		}
	}
}

func BenchmarkRewindDomainDiscard(b *testing.B) {
	as := newRewindSpace(b, 256)
	for i := 0; i < 256; i++ {
		as.WriteU8(rwBase+VAddr(i)*PageSize, byte(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := as.BeginRewindDomain(); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 32; j++ {
			as.WriteU8(rwBase+VAddr(j)*8*PageSize, byte(i))
		}
		if _, err := as.DiscardDomain(); err != nil {
			b.Fatal(err)
		}
	}
}
