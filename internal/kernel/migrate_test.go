package kernel

import (
	"testing"

	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

const migRegion = mem.VAddr(0x2000_0000)

// migSetup spawns a source process with pages preserved pages of KindCustom
// state and a fixed-spec migration to a fresh destination machine.
func migSetup(t *testing.T, pages int) (*Process, *Machine, *Migration) {
	t.Helper()
	src, err := NewMachine(1).Spawn(testImage())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.AS.Map(migRegion, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		src.AS.WriteU64(migRegion+mem.VAddr(i)*mem.PageSize, uint64(1000+i))
	}
	dst := NewMachine(2)
	mg, err := StartMigration(src, dst, func() (ExecSpec, error) {
		return ExecSpec{
			InfoAddr: migRegion + 64,
			Ranges:   []linker.Range{{Start: migRegion, Len: pages * mem.PageSize}},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return src, dst, mg
}

func TestMigrationDeltaRoundsConverge(t *testing.T) {
	src, _, mg := migSetup(t, 16)

	st, err := mg.DeltaRound()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 16 || st.Hashed != 16 || st.Shipped != 16 {
		t.Fatalf("first round = %+v, want full copy of 16 pages", st)
	}

	// Touch three pages; the next round ships exactly those.
	for i := 0; i < 3; i++ {
		src.AS.WriteU64(migRegion+mem.VAddr(i)*mem.PageSize, uint64(2000+i))
	}
	st, err = mg.DeltaRound()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 16 || st.Hashed != 3 || st.Shipped != 3 {
		t.Fatalf("second round = %+v, want 3 hashed and shipped", st)
	}

	// Quiesced source: the dirty set is converged, nothing ships.
	st, err = mg.DeltaRound()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hashed != 0 || st.Shipped != 0 {
		t.Fatalf("quiesced round = %+v, want nothing hashed or shipped", st)
	}

	// Rewriting a page with identical bytes re-hashes (the stamp moved) but
	// does not re-ship (the checksum did not).
	src.AS.WriteU64(migRegion, 2000)
	st, err = mg.DeltaRound()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hashed != 1 || st.Shipped != 0 {
		t.Fatalf("same-content rewrite round = %+v, want 1 hashed 0 shipped", st)
	}
}

func TestMigrationCutover(t *testing.T) {
	src, dst, mg := migSetup(t, 8)
	if _, err := mg.DeltaRound(); err != nil {
		t.Fatal(err)
	}
	src.AS.WriteU64(migRegion+5*mem.PageSize, 5555)

	np, st, err := mg.Cutover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shipped != 1 {
		t.Fatalf("cutover shipped %d pages, want only the final delta of 1", st.Shipped)
	}
	if np.Machine != dst {
		t.Fatal("successor not on the destination machine")
	}
	if !src.Dead() {
		t.Fatal("source still alive after cutover — preserved state has two owners")
	}
	if np.AS.ASLRBase != src.AS.ASLRBase {
		t.Fatal("ASLR base not carried to the destination")
	}
	for i := 0; i < 8; i++ {
		want := uint64(1000 + i)
		if i == 5 {
			want = 5555
		}
		if got := np.AS.ReadU64(migRegion + mem.VAddr(i)*mem.PageSize); got != want {
			t.Fatalf("page %d: got %d, want %d", i, got, want)
		}
	}
	h := np.Handoff()
	if h == nil || h.MovedPages != 8 || h.InfoAddr != migRegion+64 {
		t.Fatalf("handoff wrong: %+v", h)
	}
	if h.FallbackReason != "" {
		t.Fatalf("handoff carries fallback reason %q", h.FallbackReason)
	}
	// Image reloaded into the gaps on the destination.
	if v := np.AS.ReadU8(np.Image.Vars["counter"].Addr); v != 42 {
		t.Fatal("image not loaded in destination successor")
	}
	if !mg.Done() {
		t.Fatal("migration not marked done")
	}
	if _, err := mg.DeltaRound(); err == nil {
		t.Fatal("rounds after cutover should fail")
	}
}

// TestMigrationCutoverScalesWithDelta is acceptance criterion (c): the
// cutover window tracks the final dirty delta, not the shard size. With the
// same 4-page final delta, quadrupling the shard adds only the per-page
// stamp-scan term (5ns/page); growing the delta at fixed size adds the full
// hash+ship cost per page.
func TestMigrationCutoverScalesWithDelta(t *testing.T) {
	cutoverCost := func(pages, delta int) (cost int64) {
		src, _, mg := migSetup(t, pages)
		if _, err := mg.DeltaRound(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < delta; i++ {
			src.AS.WriteU64(migRegion+mem.VAddr(i)*mem.PageSize, uint64(7000+i))
		}
		_, st, err := mg.Cutover()
		if err != nil {
			t.Fatal(err)
		}
		if st.Shipped != delta {
			t.Fatalf("cutover shipped %d, want %d", st.Shipped, delta)
		}
		return int64(st.Cost)
	}

	model := NewMachine(0).Model
	small := cutoverCost(64, 4)
	large := cutoverCost(256, 4)
	if large-small != int64(192*model.DirtyScanPerPage) {
		t.Fatalf("4x shard size changed cutover by %dns, want only the scan term %dns",
			large-small, int64(192*model.DirtyScanPerPage))
	}
	wide := cutoverCost(64, 32)
	perPage := int64(model.ChecksumPerPage + model.MigratePerPage)
	if wide-small != 28*perPage {
		t.Fatalf("28 extra delta pages changed cutover by %dns, want %dns",
			wide-small, 28*perPage)
	}
	// The headline shape: a 4x bigger shard moves the window by less than
	// one extra delta page would.
	if large-small >= perPage {
		t.Fatalf("shard-size dependence (%dns) not dominated by one delta page (%dns)",
			large-small, perPage)
	}
}

// TestMigrationSeesRewindDiscard pins the change-detection soundness edge:
// a rewind-domain discard restores pre-image bytes without an application
// write, and the migration must still notice the content changed back.
func TestMigrationSeesRewindDiscard(t *testing.T) {
	src, _, mg := migSetup(t, 4)
	if _, err := mg.DeltaRound(); err != nil {
		t.Fatal(err)
	}

	if err := src.AS.BeginRewindDomain(); err != nil {
		t.Fatal(err)
	}
	src.AS.WriteU64(migRegion, 4242)
	// Mid-domain round ships the in-flight write.
	st, err := mg.DeltaRound()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shipped != 1 {
		t.Fatalf("mid-domain round shipped %d, want 1", st.Shipped)
	}
	if _, err := src.AS.DiscardDomain(); err != nil {
		t.Fatal(err)
	}

	np, st, err := mg.Cutover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shipped != 1 {
		t.Fatalf("cutover after discard shipped %d, want the restored page", st.Shipped)
	}
	if got := np.AS.ReadU64(migRegion); got != 1000 {
		t.Fatalf("destination holds %d, want the discarded request's pre-image 1000", got)
	}
}

func TestMigrationFollowsGrowingRangeSet(t *testing.T) {
	src, err := NewMachine(1).Spawn(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.AS.Map(migRegion, 4, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	src.AS.WriteU64(migRegion, 1)
	pages := 4
	mg, err := StartMigration(src, NewMachine(2), func() (ExecSpec, error) {
		return ExecSpec{
			InfoAddr: migRegion,
			Ranges:   []linker.Range{{Start: migRegion, Len: pages * mem.PageSize}},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.DeltaRound(); err != nil {
		t.Fatal(err)
	}

	// The "heap" grows mid-migration; the next round tracks the new pages.
	m := src.AS.FindMapping(migRegion)
	if err := src.AS.Grow(m, 2); err != nil {
		t.Fatal(err)
	}
	pages = 6
	src.AS.WriteU64(migRegion+5*mem.PageSize, 66)
	st, err := mg.DeltaRound()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 6 {
		t.Fatalf("scanned %d pages after growth, want 6", st.Scanned)
	}
	np, _, err := mg.Cutover()
	if err != nil {
		t.Fatal(err)
	}
	if got := np.AS.ReadU64(migRegion + 5*mem.PageSize); got != 66 {
		t.Fatalf("grown page lost: got %d, want 66", got)
	}
	if np.Handoff().MovedPages != 6 {
		t.Fatalf("handoff moved %d pages, want 6", np.Handoff().MovedPages)
	}
}

func TestMigrationSourceDeathAndAbort(t *testing.T) {
	src, _, mg := migSetup(t, 4)
	if _, err := mg.DeltaRound(); err != nil {
		t.Fatal(err)
	}
	src.Kill()
	if _, err := mg.DeltaRound(); err == nil {
		t.Fatal("round on dead source should fail")
	}
	if _, _, err := mg.Cutover(); err == nil {
		t.Fatal("cutover on dead source should fail")
	}

	_, _, mg2 := migSetup(t, 4)
	mg2.Abort()
	if !mg2.Aborted() {
		t.Fatal("not aborted")
	}
	if _, err := mg2.DeltaRound(); err == nil {
		t.Fatal("round after abort should fail")
	}
}

func TestMigrationZeroedPageShipsAsZeros(t *testing.T) {
	src, _, mg := migSetup(t, 4)
	if _, err := mg.DeltaRound(); err != nil {
		t.Fatal(err)
	}
	// Fully zeroing releases the frame data; the destination must read zeros,
	// not the previously shipped bytes.
	src.AS.Zero(migRegion+2*mem.PageSize, mem.PageSize)
	np, st, err := mg.Cutover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shipped != 1 {
		t.Fatalf("cutover shipped %d, want the zeroed page", st.Shipped)
	}
	if got := np.AS.ReadU64(migRegion + 2*mem.PageSize); got != 0 {
		t.Fatalf("zeroed page reads %d on destination, want 0", got)
	}
}

func TestMigrationChargesClocks(t *testing.T) {
	src, dst, mg := migSetup(t, 8)
	model := src.Machine.Model

	srcBefore := src.Machine.Clock.Now()
	st, err := mg.DeltaRound()
	if err != nil {
		t.Fatal(err)
	}
	if d := src.Machine.Clock.Now() - srcBefore; d != model.MigrateRound(8, 8, 8) || d != st.Cost {
		t.Fatalf("round charged %v, want %v (= stats %v)", d, model.MigrateRound(8, 8, 8), st.Cost)
	}

	srcBefore = src.Machine.Clock.Now()
	dstBefore := dst.Clock.Now()
	_, st, err = mg.Cutover()
	if err != nil {
		t.Fatal(err)
	}
	if d := src.Machine.Clock.Now() - srcBefore; d != model.MigrateCutover(8, 0, 0) || d != st.Cost {
		t.Fatalf("cutover charged source %v, want %v", d, model.MigrateCutover(8, 0, 0))
	}
	if d := dst.Clock.Now() - dstBefore; d != dst.Model.Exec() || d != st.InstallCost {
		t.Fatalf("cutover charged destination %v, want %v", d, dst.Model.Exec())
	}
}
