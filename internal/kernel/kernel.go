// Package kernel implements the simulated operating-system layer: processes
// with isolated address spaces, signal delivery, watchdog timers, and —
// centrally — the preserve_exec system call of §3.2/§3.3, which creates a
// fresh process image while zero-copy-transferring selected page ranges from
// the dying process at their original virtual addresses.
package kernel

import (
	"fmt"
	"math/rand"
	"time"

	"phoenix/internal/costmodel"
	"phoenix/internal/faultinject"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/metrics"
	"phoenix/internal/simclock"
	"phoenix/internal/storage"
)

// Signal numbers follow the POSIX values the paper's runtime hooks.
type Signal int

const (
	// SIGSEGV is delivered for invalid simulated-memory accesses.
	SIGSEGV Signal = 11
	// SIGABRT is delivered for application asserts and allocator aborts.
	SIGABRT Signal = 6
	// SIGALRM is delivered when a watchdog forces a restart of a hung
	// process.
	SIGALRM Signal = 14
	// SIGKILL tears a process down without running handlers.
	SIGKILL Signal = 9
)

func (s Signal) String() string {
	switch s {
	case SIGSEGV:
		return "SIGSEGV"
	case SIGABRT:
		return "SIGABRT"
	case SIGALRM:
		return "SIGALRM"
	case SIGKILL:
		return "SIGKILL"
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// Crash is the panic value application code uses for non-memory failures
// (failed asserts, allocator aborts, out-of-memory). The kernel converts it,
// like *mem.Fault, into a signal delivery.
type Crash struct {
	Sig    Signal
	Reason string
	// Component optionally names the application component whose code raised
	// the failure, letting the supervisor try a component-scoped recovery
	// (microreboot) before escalating to a process-level restart.
	Component string
}

func (c *Crash) Error() string { return fmt.Sprintf("kernel: %s: %s", c.Sig, c.Reason) }

// CrashInfo describes a caught failure, handed to the registered signal
// handler.
type CrashInfo struct {
	Sig       Signal
	Reason    string
	Addr      mem.VAddr // faulting address for SIGSEGV
	Time      time.Duration
	Component string // component that raised the failure, when known
}

// Machine is the simulated host: one clock, one cost model, one disk, and a
// PID namespace.
type Machine struct {
	Clock *simclock.Clock
	Model costmodel.Model
	Disk  *storage.Disk

	// Inj, when set, provides the recovery-path fault-injection sites
	// (faultinject.RecoverySites) the kernel consults during preserve_exec.
	// Nil means no injection.
	Inj *faultinject.Injector

	// Counters tracks preserve_exec lifecycle events (plans staged,
	// committed, aborted) machine-wide.
	Counters *metrics.RecoveryCounters

	// AuditIncremental, when set, makes every verified preserve_exec run the
	// full checksum walk alongside the incremental one and count (in
	// Counters.IncrementalAuditDivergences) any commit the incremental walk
	// would pass but the full walk would fail. The audit is a pure read-back:
	// it charges no simulated time and never changes the commit outcome, so
	// exploration campaigns can leave it on for every seed.
	AuditIncremental bool

	// PreserveWorkers is the worker-pool width for the parallel preserve
	// walks (checksum staging, post-commit verification, migration delta
	// scans). 0 takes one worker per host CPU; values are clamped to
	// maxPreserveWorkers. The pool affects wall-clock time only — results
	// and the simulated clock are identical for every width (see parallel.go).
	PreserveWorkers int

	nextPID int
	rng     *rand.Rand
}

// NewMachine boots a simulated machine with the given deterministic seed
// (used only for ASLR layout).
func NewMachine(seed int64) *Machine {
	clk := simclock.New()
	model := costmodel.Default()
	return &Machine{
		Clock:    clk,
		Model:    model,
		Disk:     storage.NewDisk(clk, model),
		Counters: metrics.NewRecoveryCounters(),
		nextPID:  100,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// failAt consults the machine's injector (if any) for an armed OpFailure at
// the given recovery-path site.
func (m *Machine) failAt(site string) bool {
	return m.Inj != nil && m.Inj.Fail(site)
}

// Process is one simulated process.
type Process struct {
	PID     int
	Machine *Machine
	AS      *mem.AddressSpace
	Image   *linker.Image

	// LinkMap is the preserved dynamic-linker map (§3.4's private syscall).
	LinkMap *linker.LinkMap

	// preserved carries the PHOENIX recovery handoff from the prior process
	// when this process was created by PreserveExec.
	preserved *Handoff

	handlers map[Signal]func(*CrashInfo)
	dead     bool
}

// Handoff is what preserve_exec carries from the old process to the new one:
// the application's recovery-info pointer (which must live in preserved
// memory), the set of preserved ranges, and accounting for the transfer.
type Handoff struct {
	InfoAddr    mem.VAddr
	Ranges      []linker.Range
	MovedPages  int
	CopiedPages int
	// VerifiedChecksums counts the integrity checksums (one per moved frame
	// plus one per partial-page copy) the preserve info block covered and the
	// kernel validated after commit — freshly re-hashed pages directly, and
	// clean cached pages by the delta argument (verified at the prior commit,
	// moved by pointer, not dirtied since). Zero when verification was
	// skipped.
	VerifiedChecksums int
	// ReusedChecksums counts how many of those checksums were reused from the
	// prior verified commit's cache instead of re-hashed — the incremental
	// preservation win.
	ReusedChecksums int
	// PageSums is the per-page checksum cache carried in the preserve info
	// block: the verified FNV-1a sum of every fully-moved page as of this
	// commit. The next PreserveExec reuses these sums for pages whose
	// soft-dirty bit is still clear, hashing only pages written since. Nil
	// when verification was skipped — an unverified commit must never become
	// the baseline, or a silently corrupted frame would be laundered into a
	// "known good" sum.
	PageSums map[mem.PageNum]uint64
	// FallbackReason is set when this exec is a non-PHOENIX restart after a
	// fallback decision, so the new process knows recovery mode is off.
	FallbackReason string
}

// IntegrityError reports a preserved frame whose post-commit contents no
// longer match the FNV-1a checksum staged into the preserve info block while
// the source was still whole — a bit flip (or torn write) in the preservation
// channel itself. The kernel has already rolled the transfer back when this
// error is returned; the caller must treat the preserved state as poisoned
// and fall back to the application's default recovery.
type IntegrityError struct {
	Addr mem.VAddr // start of the corrupted frame or partial range
	Want uint64
	Got  uint64
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("kernel: preserve_exec: integrity checksum mismatch at %#x (want %#x, got %#x)",
		uint64(e.Addr), e.Want, e.Got)
}

// aslrSlide picks a page-aligned randomized base offset: 28 bits of entropy,
// floored at 1<<45 so every possible slide lands well above the image bases
// and heap regions the builder and runtime lay out (which stay below a few
// hundred GiB).
func (m *Machine) aslrSlide() mem.VAddr {
	const slideFloor = mem.VAddr(1) << 45
	return slideFloor + mem.VAddr(m.rng.Int63n(1<<28)+1)<<mem.PageShift
}

// Spawn creates a brand-new process from the image: fresh address space,
// fresh ASLR base (the builder should have been laid out against base 0 and
// is slid here — for simplicity our images carry absolute addresses, so the
// slide is recorded but layout reuses the image's own addresses; what
// matters for the PHOENIX contract is that the slide is *reused* across
// PHOENIX restarts, which Spawn vs PreserveExec makes observable).
func (m *Machine) Spawn(img *linker.Image) (*Process, error) {
	m.Clock.Advance(m.Model.Exec())
	p := &Process{
		PID:      m.allocPID(),
		Machine:  m,
		AS:       mem.NewAddressSpace(),
		Image:    img,
		handlers: make(map[Signal]func(*CrashInfo)),
	}
	p.AS.ASLRBase = m.aslrSlide()
	if img != nil {
		if _, err := img.Load(p.AS); err != nil {
			return nil, err
		}
		p.LinkMap = &linker.LinkMap{Image: img, ASLRBase: p.AS.ASLRBase}
	}
	return p, nil
}

func (m *Machine) allocPID() int {
	m.nextPID++
	return m.nextPID
}

// Restore creates a process around an externally reconstructed address
// space — the CRIU restore path. The caller is responsible for charging the
// image-read time; Restore itself charges only the base exec cost.
func (m *Machine) Restore(img *linker.Image, as *mem.AddressSpace) *Process {
	m.Clock.Advance(m.Model.Exec())
	p := &Process{
		PID:      m.allocPID(),
		Machine:  m,
		AS:       as,
		Image:    img,
		handlers: make(map[Signal]func(*CrashInfo)),
	}
	if img != nil {
		p.LinkMap = &linker.LinkMap{Image: img, ASLRBase: as.ASLRBase}
	}
	return p
}

// ExecSpec parameterises PreserveExec.
type ExecSpec struct {
	// InfoAddr is the recovery-info pointer passed by the restart handler.
	// It must point into one of the preserved ranges.
	InfoAddr mem.VAddr
	// Ranges are the byte ranges to preserve. Full pages are moved
	// zero-copy; partial head/tail pages fall back to copying (§3.3).
	Ranges []linker.Range
	// WithSection additionally preserves the image's .phx.* sections.
	WithSection bool
	// SkipVerify disables the post-commit integrity verification of the
	// per-frame checksums staged into the preserve info block. Checksums are
	// still computed (they are part of the info block either way); only the
	// read-back comparison in the new address space is skipped.
	SkipVerify bool
}

// PreserveExec implements the PHOENIX system call: it constructs the
// successor process, moves the page-table entries of all preserved ranges
// into it at their original virtual addresses, loads the fresh image into
// the remaining gaps, and tears down the caller. The simulated clock is
// charged per the cost model (fixed exec cost + per-page PTE moves + per-page
// copies for partial pages).
//
// The call is crash-atomic. It runs in two phases: first every range
// transfer is validated and staged against both address spaces — source
// coverage, destination overlap, partial-page geometry, the info-block
// placement, and collisions with non-preserved image sections — without
// touching either process; only once the whole plan is known good are the
// PTE moves and copies committed. A validation failure returns with the
// source process fully intact, and a failure during commit (real or
// injected via the faultinject recovery sites) rolls the applied moves back
// before returning, so the caller can always fall back to the application's
// default recovery instead of inheriting a half-gutted address space.
func (p *Process) PreserveExec(spec ExecSpec) (*Process, error) {
	if p.dead {
		return nil, fmt.Errorf("kernel: preserve_exec on dead process %d", p.PID)
	}
	m := p.Machine

	ranges := append([]linker.Range(nil), spec.Ranges...)
	if spec.WithSection && p.Image != nil {
		ranges = append(ranges, p.Image.PreservedRanges()...)
	}

	plan, err := p.stagePreserve(ranges, spec.InfoAddr)
	if err != nil {
		m.Counters.PreservesAborted.Add(1)
		return nil, err
	}
	plan.skipVerify = spec.SkipVerify
	m.Counters.PreservesStaged.Add(1)

	np := &Process{
		PID:      m.allocPID(),
		Machine:  m,
		AS:       mem.NewAddressSpace(),
		Image:    p.Image,
		LinkMap:  p.LinkMap, // preserved via the private link_map syscall
		handlers: make(map[Signal]func(*CrashInfo)),
	}
	// ASLR: reuse the prior slide rather than re-randomizing (§3.3).
	np.AS.ASLRBase = p.AS.ASLRBase

	if err := p.commitPreserve(np, plan); err != nil {
		m.Counters.PreservesAborted.Add(1)
		return nil, err
	}

	verified := 0
	if !plan.skipVerify {
		verified = plan.checksums()
		m.Counters.ChecksumsVerified.Add(int64(verified))
		m.Counters.ChecksumsReused.Add(int64(plan.reused))
	}
	// The clock is charged per the delta model: PTE moves and copies as
	// before, full hashes only for the pages actually hashed (stage + verify),
	// plus a soft-dirty bit scan over every preserved page.
	m.Clock.Advance(m.Model.PreserveExecDelta(plan.moved, plan.copied, plan.hashed, plan.moved))
	np.preserved = &Handoff{
		InfoAddr:          spec.InfoAddr,
		Ranges:            ranges,
		MovedPages:        plan.moved,
		CopiedPages:       plan.copied,
		VerifiedChecksums: verified,
		ReusedChecksums:   plan.reused,
	}
	if !plan.skipVerify {
		// This commit is the new delta baseline: record the verified per-page
		// sums in the handoff and clear the soft-dirty bits of every
		// fully-moved page in the successor. Both happen only on a verified
		// commit — a SkipVerify commit propagates no cache and clears no bits
		// (nothing proved the content matches the sums), and an aborted or
		// integrity-failed commit never reaches here, so the rolled-back
		// source keeps its dirty bits and the old cache stays valid.
		np.preserved.PageSums = plan.cacheSums()
		for _, mv := range plan.moves {
			np.AS.ClearDirty(mv.start, mv.pages)
		}
	}
	m.Counters.PreservesCommitted.Add(1)
	p.dead = true
	return np, nil
}

// pageMove is one staged zero-copy PTE transfer of a contiguous aligned run.
// sums holds the FNV-1a checksum of each page in the run, recorded into the
// preserve info block while the source was still whole. cached[i] marks sums
// reused from the prior verified commit's cache (the page's soft-dirty bit was
// still clear) rather than re-hashed.
type pageMove struct {
	start  mem.VAddr
	pages  int
	sums   []uint64
	cached []bool
}

// partialCopy is one staged partial-page transfer: the bytes were read from
// the intact source at stage time, so committing them later cannot observe a
// half-moved page. sum is the stage-time checksum of exactly those bytes.
type partialCopy struct {
	addr mem.VAddr
	data []byte
	kind mem.Kind
	name string
	sum  uint64
}

// preservePlan is a fully validated preserve_exec transfer plan.
type preservePlan struct {
	moves  []pageMove
	copies []partialCopy
	// movePages tracks destination pages claimed by full-page moves, to
	// reject overlapping move ranges up front instead of failing mid-commit.
	movePages map[mem.PageNum]bool
	// pages is every destination page the plan installs (moves and partial
	// copies) — the set the info block must land in.
	pages  map[mem.PageNum]bool
	moved  int
	copied int
	// hashed counts full FNV passes actually computed for this plan (stage
	// plus verify); reused counts sums taken from the prior commit's cache.
	// Together they drive the delta cost model: the clock is charged for
	// hashed pages plus a per-page dirty-bit scan, not for the preserved set.
	hashed int
	reused int
	// skipVerify suppresses the post-commit checksum comparison (ExecSpec's
	// knob; the sums themselves are always staged).
	skipVerify bool
}

// checksums returns the number of integrity checksums the plan stages: one
// per moved frame plus one per partial copy.
func (plan *preservePlan) checksums() int { return plan.moved + len(plan.copies) }

// cacheSums builds the per-page checksum cache a verified commit hands to the
// successor: the sum of every fully-moved page. Pages that only received a
// partial copy are excluded — the rest of such a page is image- or
// zero-backed, so its full-page sum is not what was staged, and partial
// copies are restaged fresh on every preserve anyway.
func (plan *preservePlan) cacheSums() map[mem.PageNum]uint64 {
	out := make(map[mem.PageNum]uint64, plan.moved)
	for _, mv := range plan.moves {
		for i := 0; i < mv.pages; i++ {
			out[mem.PageOf(mv.start)+mem.PageNum(i)] = mv.sums[i]
		}
	}
	return out
}

// stagePreserve validates every range against both address spaces and stages
// the transfers without mutating anything. Partial-page bytes are captured
// here, while the source is still whole.
func (p *Process) stagePreserve(ranges []linker.Range, infoAddr mem.VAddr) (*preservePlan, error) {
	plan := &preservePlan{
		movePages: make(map[mem.PageNum]bool),
		pages:     make(map[mem.PageNum]bool),
	}
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		if err := p.planRange(plan, r); err != nil {
			return nil, err
		}
	}
	if infoAddr != mem.NullPtr && !plan.pages[mem.PageOf(infoAddr)] {
		return nil, fmt.Errorf("kernel: preserve_exec: info block %#x not in a preserved range",
			uint64(infoAddr))
	}
	// The dynamic linker refuses to reload a non-preserved section over a
	// kernel-installed range; catch that collision before commit rather than
	// after the address space has been gutted.
	if p.Image != nil {
		for _, s := range p.Image.Sections {
			if !s.Kind.Preserved() && plan.pages[mem.PageOf(s.Addr)] {
				return nil, fmt.Errorf("kernel: preserve_exec: preserved range covers non-preserved section %s at %#x",
					s.Kind, uint64(s.Addr))
			}
		}
	}
	return plan, nil
}

// planRange splits r into full-page moves and partial head/tail copies and
// validates each piece. A sub-page range — whether or not its start is
// page-aligned — becomes a single partial copy; the old geometry dropped
// page-aligned sub-page ranges entirely.
func (p *Process) planRange(plan *preservePlan, r linker.Range) error {
	start, end := r.Start, r.End()
	alignedStart := mem.PageBase(start + mem.PageSize - 1) // round up
	alignedEnd := mem.PageBase(end)                        // round down

	if alignedEnd < alignedStart {
		// The whole range sits inside one partial page.
		return p.planCopy(plan, start, end)
	}
	if start < alignedStart {
		if err := p.planCopy(plan, start, alignedStart); err != nil {
			return err
		}
	}
	if alignedEnd > alignedStart {
		if err := p.planMove(plan, alignedStart, alignedEnd); err != nil {
			return err
		}
	}
	if alignedEnd < end {
		if err := p.planCopy(plan, alignedEnd, end); err != nil {
			return err
		}
	}
	return nil
}

// planCopy stages the partial-page transfer of [lo,hi), which lies within a
// single page.
func (p *Process) planCopy(plan *preservePlan, lo, hi mem.VAddr) error {
	src := p.AS.FindMapping(lo)
	if src == nil {
		return fmt.Errorf("kernel: preserve range %#x unmapped in source", uint64(lo))
	}
	data := p.AS.ReadBytes(lo, int(hi-lo))
	plan.copies = append(plan.copies, partialCopy{
		addr: lo,
		data: data,
		kind: src.Kind,
		name: src.Name + "(partial)",
		sum:  mem.Checksum(data),
	})
	plan.pages[mem.PageOf(lo)] = true
	plan.copied++
	plan.hashed++ // partial copies are always freshly hashed, never cached
	return nil
}

// planMove stages the zero-copy transfer of the aligned run [lo,hi),
// validating full source coverage and that no earlier range already claims
// any of its pages as a full-page move.
func (p *Process) planMove(plan *preservePlan, lo, hi mem.VAddr) error {
	for cur := lo; cur < hi; {
		mp := p.AS.FindMapping(cur)
		if mp == nil {
			return fmt.Errorf("kernel: preserve range %#x unmapped in source", uint64(cur))
		}
		cur = mp.End()
	}
	for pg := mem.PageOf(lo); pg < mem.PageOf(hi); pg++ {
		if plan.movePages[pg] {
			return fmt.Errorf("kernel: preserve_exec: overlapping preserved ranges at %#x",
				uint64(pg)<<mem.PageShift)
		}
		plan.movePages[pg] = true
		plan.pages[pg] = true
	}
	pages := int((hi - lo) / mem.PageSize)
	sums := make([]uint64, pages)
	cached := make([]bool, pages)
	hashed := make([]bool, pages)
	var cache map[mem.PageNum]uint64
	if p.preserved != nil {
		cache = p.preserved.PageSums
	}
	// The staging walk is pure per-page reads against the quiescent source,
	// so it fans out over the preserve worker pool; every worker writes only
	// its own index range and the counters are folded afterwards in page
	// order, keeping the plan byte-identical for any pool width.
	parallelRanges(pages, p.Machine.preserveWorkers(), func(wlo, whi int) {
		for i := wlo; i < whi; i++ {
			pg := mem.PageOf(lo) + mem.PageNum(i)
			// Reuse the cached sum only when it is provably current: the page
			// was verified at the last commit, its frame is still resident
			// (Unmap or a whole-page Zero since would have released it), and no
			// write path has set its soft-dirty bit. Everything else is hashed
			// fresh — which for a non-resident page is the O(1) zero-page sum,
			// never a stale cache entry.
			if c, ok := cache[pg]; ok && p.AS.PageResident(pg) && !p.AS.PageDirty(pg) {
				sums[i] = c
				cached[i] = true
			} else {
				sums[i] = p.AS.PageChecksum(pg)
				hashed[i] = p.AS.PageResident(pg)
			}
		}
	})
	for i := range sums {
		if cached[i] {
			plan.reused++
		} else if hashed[i] {
			plan.hashed++
		}
	}
	plan.moves = append(plan.moves, pageMove{start: lo, pages: pages, sums: sums, cached: cached})
	plan.moved += pages
	return nil
}

// commitPreserve applies a staged plan to the successor. Any failure —
// injected through the faultinject recovery sites or surfaced by the memory
// substrate — rolls back the page moves already applied, leaving the source
// address space exactly as it was before the call.
func (p *Process) commitPreserve(np *Process, plan *preservePlan) error {
	m := p.Machine
	if m.failAt(faultinject.SitePreservePlan) {
		return fmt.Errorf("kernel: preserve_exec: injected crash between plan and commit")
	}
	applied := 0
	rollback := func() {
		for _, mv := range plan.moves[:applied] {
			np.AS.UnmovePages(p.AS, mv.start, mv.pages)
		}
	}
	for _, mv := range plan.moves {
		if m.failAt(faultinject.SitePreserveMove) {
			rollback()
			return fmt.Errorf("kernel: preserve_exec: injected page-move failure at %#x",
				uint64(mv.start))
		}
		if _, err := p.AS.MovePages(np.AS, mv.start, mv.pages); err != nil {
			rollback()
			return fmt.Errorf("kernel: preserve_exec: page move: %w", err)
		}
		applied++
	}
	// Copies run after every move so a partial page that shares a frame with
	// a moved run rewrites it with the identical bytes staged from the
	// intact source.
	for _, cp := range plan.copies {
		if m.failAt(faultinject.SitePreserveCopy) {
			rollback()
			return fmt.Errorf("kernel: preserve_exec: injected partial-copy failure at %#x",
				uint64(cp.addr))
		}
		base := mem.PageBase(cp.addr)
		if !np.AS.Mapped(base) {
			if _, err := np.AS.Map(base, 1, cp.kind, cp.name); err != nil {
				rollback()
				return fmt.Errorf("kernel: preserve_exec: partial copy: %w", err)
			}
		}
		np.AS.WriteAt(cp.addr, cp.data)
	}
	// Load the fresh image into the gaps; the dynamic linker skips the
	// kernel-installed preserved ranges.
	if p.Image != nil {
		if m.failAt(faultinject.SitePreserveLoad) {
			rollback()
			return fmt.Errorf("kernel: preserve_exec: injected image-load failure")
		}
		if _, err := p.Image.Load(np.AS); err != nil {
			rollback()
			return fmt.Errorf("kernel: preserve_exec: image load: %w", err)
		}
	}
	// The Byzantine window: both address spaces exist, the transfer is
	// committed, and nothing has re-read the frames yet. An armed corruption
	// fault strikes here, exactly where real bad DRAM or a stray DMA would.
	p.injectCorruption(np, plan)
	// Verify the staged checksums against what the new address space actually
	// holds. A mismatch rolls the whole transfer back — the successor must
	// never boot from silently corrupted preserved state.
	if !plan.skipVerify {
		err := verifyChecksums(np.AS, plan, m.preserveWorkers())
		if m.AuditIncremental && err == nil {
			if full := verifyFull(np.AS, plan); full != nil {
				// The incremental walk validated less than the full walk
				// would: a corrupted frame slipped past the delta argument.
				m.Counters.IncrementalAuditDivergences.Add(1)
			}
		}
		if err != nil {
			m.Counters.ChecksumMismatches.Add(1)
			rollback()
			return err
		}
	}
	return nil
}

// injectCorruption consults the kernel.preserve.corrupt site once per
// preserved frame (moved pages in plan order, then partial copies) and flips
// one bit of the frame an armed BitFlip selects. The flip goes straight to
// the frame bytes — it is invisible to the application's instrumented stores
// and detectable only by the integrity checksums or the cross-check.
func (p *Process) injectCorruption(np *Process, plan *preservePlan) {
	if p.Machine.Inj == nil {
		return
	}
	for _, mv := range plan.moves {
		for i := 0; i < mv.pages; i++ {
			if p.Machine.Inj.Corrupt(faultinject.SitePreserveCorrupt) {
				addr := mv.start + mem.VAddr(i)*mem.PageSize
				// Deterministic victim byte/bit derived from the page number.
				pg := uint64(mem.PageOf(addr))
				np.AS.FlipBit(addr+mem.VAddr(pg*2654435761%mem.PageSize), uint(pg%8))
				return
			}
		}
	}
	for _, cp := range plan.copies {
		if p.Machine.Inj.Corrupt(faultinject.SitePreserveCorrupt) {
			np.AS.FlipBit(cp.addr+mem.VAddr(len(cp.data)/2), uint(len(cp.data)%8))
			return
		}
	}
}

// verifyChecksums re-reads transferred frames from the destination address
// space and compares them against the checksums staged while the source was
// whole. The walk is incremental: a page whose sum was reused from the prior
// verified commit's cache is skipped when its destination frame is still
// clean — it was verified then, the frame moved by pointer, and any
// corruption since (including FlipBit, which goes through the MMU) would have
// set its soft-dirty bit. Freshly-hashed pages, partial copies, and cached
// pages that arrive dirty are always compared.
//
// The re-hash fans out over the preserve worker pool; the staged per-page
// results are then folded serially in page order, so the hashed count and
// the first reported mismatch are identical to the serial walk's for every
// pool width (a mismatch stops the fold exactly where the serial loop would
// have returned).
func verifyChecksums(dst *mem.AddressSpace, plan *preservePlan, workers int) error {
	for _, mv := range plan.moves {
		type pageCheck struct {
			skip   bool
			hashed bool
			got    uint64
		}
		checks := make([]pageCheck, mv.pages)
		parallelRanges(mv.pages, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				pg := mem.PageOf(mv.start) + mem.PageNum(i)
				if mv.cached[i] && !dst.PageDirty(pg) {
					checks[i].skip = true
					continue
				}
				checks[i].hashed = dst.PageResident(pg)
				checks[i].got = dst.PageChecksum(pg)
			}
		})
		for i, c := range checks {
			if c.skip {
				continue
			}
			if c.hashed {
				plan.hashed++
			}
			if c.got != mv.sums[i] {
				addr := mv.start + mem.VAddr(i)*mem.PageSize
				return &IntegrityError{Addr: addr, Want: mv.sums[i], Got: c.got}
			}
		}
	}
	for _, cp := range plan.copies {
		plan.hashed++
		if got := mem.Checksum(dst.ReadBytes(cp.addr, len(cp.data))); got != cp.sum {
			return &IntegrityError{Addr: cp.addr, Want: cp.sum, Got: got}
		}
	}
	return nil
}

// verifyFull is the non-incremental walk: every transferred frame is re-read
// and compared, cache or not. It is the audit oracle AuditIncremental runs
// beside verifyChecksums to prove the incremental walk never validates less;
// it mutates no counters and charges no simulated time.
func verifyFull(dst *mem.AddressSpace, plan *preservePlan) error {
	for _, mv := range plan.moves {
		for i := 0; i < mv.pages; i++ {
			addr := mv.start + mem.VAddr(i)*mem.PageSize
			if got := dst.PageChecksum(mem.PageOf(addr)); got != mv.sums[i] {
				return &IntegrityError{Addr: addr, Want: mv.sums[i], Got: got}
			}
		}
	}
	for _, cp := range plan.copies {
		if got := mem.Checksum(dst.ReadBytes(cp.addr, len(cp.data))); got != cp.sum {
			return &IntegrityError{Addr: cp.addr, Want: cp.sum, Got: got}
		}
	}
	return nil
}

// BeginRewindDomain opens a per-request rewind domain on the process's
// address space, charging the O(1) arming cost. Pre-images are captured
// lazily at first touch, so entry pays no per-page term.
func (p *Process) BeginRewindDomain() error {
	if err := p.AS.BeginRewindDomain(); err != nil {
		return err
	}
	p.Machine.Clock.Advance(p.Machine.Model.DomainBegin)
	return nil
}

// CommitRewindDomain closes the open rewind domain keeping its writes,
// charging the deferred CoW capture per touched page. It returns the touched
// page count.
func (p *Process) CommitRewindDomain() (int, error) {
	n, err := p.AS.CommitDomain()
	if err != nil {
		return 0, err
	}
	p.Machine.Clock.Advance(p.Machine.Model.RewindCommit(n))
	return n, nil
}

// DiscardRewindDomain closes the open rewind domain rolling every touched
// page back byte-exactly, charging the CoW capture plus pre-image write-back
// per touched page. It returns the restored page count.
func (p *Process) DiscardRewindDomain() (int, error) {
	n, err := p.AS.DiscardDomain()
	if err != nil {
		return 0, err
	}
	p.Machine.Clock.Advance(p.Machine.Model.RewindDiscard(n))
	p.Machine.Counters.DomainDiscards.Add(1)
	return n, nil
}

// Exec replaces the process with a fresh image and no preserved state — a
// plain restart. reason annotates why (e.g. a PHOENIX fallback).
func (p *Process) Exec(reason string) (*Process, error) {
	if p.dead {
		return nil, fmt.Errorf("kernel: exec on dead process %d", p.PID)
	}
	np, err := p.Machine.Spawn(p.Image)
	if err != nil {
		return nil, err
	}
	np.preserved = &Handoff{FallbackReason: reason}
	p.dead = true
	return np, nil
}

// Handoff returns the preserve_exec handoff if this process was created by
// one, or nil for a first start / plain restart without annotation.
func (p *Process) Handoff() *Handoff { return p.preserved }

// Dead reports whether the process has been replaced or killed.
func (p *Process) Dead() bool { return p.dead }

// Kill marks the process dead without running handlers.
func (p *Process) Kill() { p.dead = true }

// OnSignal registers a handler for sig (phx_init registers the restart
// handler for SIGSEGV this way).
func (p *Process) OnSignal(sig Signal, fn func(*CrashInfo)) {
	p.handlers[sig] = fn
}

// Deliver invokes the registered handler for the signal, if any, and reports
// whether one ran. SIGKILL never runs handlers.
func (p *Process) Deliver(info *CrashInfo) bool {
	if info.Sig == SIGKILL {
		p.dead = true
		return false
	}
	if fn := p.handlers[info.Sig]; fn != nil {
		fn(info)
		return true
	}
	return false
}

// Run executes f, converting panics that carry *mem.Fault or *Crash into a
// CrashInfo (other panics propagate — they are bugs in the simulator, not
// simulated failures). It returns nil if f completes.
func (p *Process) Run(f func()) (ci *CrashInfo) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch v := r.(type) {
		case *mem.Fault:
			ci = &CrashInfo{Sig: SIGSEGV, Reason: v.Error(), Addr: v.Addr, Time: p.Machine.Clock.Now()}
		case *Crash:
			ci = &CrashInfo{Sig: v.Sig, Reason: v.Reason, Time: p.Machine.Clock.Now(), Component: v.Component}
		default:
			panic(r)
		}
	}()
	f()
	return nil
}

// Watchdog detects hangs: if Pet is not called within Timeout of simulated
// time, Expired reports true and the supervisor forces a SIGALRM restart —
// the "added watchdog" of §2.1 and the pool-herder of §4.3.3.
type Watchdog struct {
	Timeout time.Duration
	clock   *simclock.Clock
	lastPet time.Duration
}

// NewWatchdog creates a watchdog petted at the current instant.
func (m *Machine) NewWatchdog(timeout time.Duration) *Watchdog {
	return &Watchdog{Timeout: timeout, clock: m.Clock, lastPet: m.Clock.Now()}
}

// Pet records liveness.
func (w *Watchdog) Pet() { w.lastPet = w.clock.Now() }

// Expired reports whether the timeout has elapsed since the last Pet.
func (w *Watchdog) Expired() bool {
	return w.clock.Now()-w.lastPet >= w.Timeout
}

// Deadline returns the absolute simulated time at which the watchdog fires
// if not petted again.
func (w *Watchdog) Deadline() time.Duration { return w.lastPet + w.Timeout }
