// Package kernel implements the simulated operating-system layer: processes
// with isolated address spaces, signal delivery, watchdog timers, and —
// centrally — the preserve_exec system call of §3.2/§3.3, which creates a
// fresh process image while zero-copy-transferring selected page ranges from
// the dying process at their original virtual addresses.
package kernel

import (
	"fmt"
	"math/rand"
	"time"

	"phoenix/internal/costmodel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/simclock"
	"phoenix/internal/storage"
)

// Signal numbers follow the POSIX values the paper's runtime hooks.
type Signal int

const (
	// SIGSEGV is delivered for invalid simulated-memory accesses.
	SIGSEGV Signal = 11
	// SIGABRT is delivered for application asserts and allocator aborts.
	SIGABRT Signal = 6
	// SIGALRM is delivered when a watchdog forces a restart of a hung
	// process.
	SIGALRM Signal = 14
	// SIGKILL tears a process down without running handlers.
	SIGKILL Signal = 9
)

func (s Signal) String() string {
	switch s {
	case SIGSEGV:
		return "SIGSEGV"
	case SIGABRT:
		return "SIGABRT"
	case SIGALRM:
		return "SIGALRM"
	case SIGKILL:
		return "SIGKILL"
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// Crash is the panic value application code uses for non-memory failures
// (failed asserts, allocator aborts, out-of-memory). The kernel converts it,
// like *mem.Fault, into a signal delivery.
type Crash struct {
	Sig    Signal
	Reason string
}

func (c *Crash) Error() string { return fmt.Sprintf("kernel: %s: %s", c.Sig, c.Reason) }

// CrashInfo describes a caught failure, handed to the registered signal
// handler.
type CrashInfo struct {
	Sig    Signal
	Reason string
	Addr   mem.VAddr // faulting address for SIGSEGV
	Time   time.Duration
}

// Machine is the simulated host: one clock, one cost model, one disk, and a
// PID namespace.
type Machine struct {
	Clock *simclock.Clock
	Model costmodel.Model
	Disk  *storage.Disk

	nextPID int
	rng     *rand.Rand
}

// NewMachine boots a simulated machine with the given deterministic seed
// (used only for ASLR layout).
func NewMachine(seed int64) *Machine {
	clk := simclock.New()
	model := costmodel.Default()
	return &Machine{
		Clock:   clk,
		Model:   model,
		Disk:    storage.NewDisk(clk, model),
		nextPID: 100,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Process is one simulated process.
type Process struct {
	PID     int
	Machine *Machine
	AS      *mem.AddressSpace
	Image   *linker.Image

	// LinkMap is the preserved dynamic-linker map (§3.4's private syscall).
	LinkMap *linker.LinkMap

	// preserved carries the PHOENIX recovery handoff from the prior process
	// when this process was created by PreserveExec.
	preserved *Handoff

	handlers map[Signal]func(*CrashInfo)
	dead     bool
}

// Handoff is what preserve_exec carries from the old process to the new one:
// the application's recovery-info pointer (which must live in preserved
// memory), the set of preserved ranges, and accounting for the transfer.
type Handoff struct {
	InfoAddr    mem.VAddr
	Ranges      []linker.Range
	MovedPages  int
	CopiedPages int
	// FallbackReason is set when this exec is a non-PHOENIX restart after a
	// fallback decision, so the new process knows recovery mode is off.
	FallbackReason string
}

// aslrSlide picks a page-aligned randomized base offset.
func (m *Machine) aslrSlide() mem.VAddr {
	// 28 bits of entropy, page aligned, well away from page zero.
	return mem.VAddr((m.rng.Int63n(1<<16) + 1) << mem.PageShift)
}

// Spawn creates a brand-new process from the image: fresh address space,
// fresh ASLR base (the builder should have been laid out against base 0 and
// is slid here — for simplicity our images carry absolute addresses, so the
// slide is recorded but layout reuses the image's own addresses; what
// matters for the PHOENIX contract is that the slide is *reused* across
// PHOENIX restarts, which Spawn vs PreserveExec makes observable).
func (m *Machine) Spawn(img *linker.Image) (*Process, error) {
	m.Clock.Advance(m.Model.Exec())
	p := &Process{
		PID:      m.allocPID(),
		Machine:  m,
		AS:       mem.NewAddressSpace(),
		Image:    img,
		handlers: make(map[Signal]func(*CrashInfo)),
	}
	p.AS.ASLRBase = m.aslrSlide()
	if img != nil {
		if _, err := img.Load(p.AS); err != nil {
			return nil, err
		}
		p.LinkMap = &linker.LinkMap{Image: img, ASLRBase: p.AS.ASLRBase}
	}
	return p, nil
}

func (m *Machine) allocPID() int {
	m.nextPID++
	return m.nextPID
}

// Restore creates a process around an externally reconstructed address
// space — the CRIU restore path. The caller is responsible for charging the
// image-read time; Restore itself charges only the base exec cost.
func (m *Machine) Restore(img *linker.Image, as *mem.AddressSpace) *Process {
	m.Clock.Advance(m.Model.Exec())
	p := &Process{
		PID:      m.allocPID(),
		Machine:  m,
		AS:       as,
		Image:    img,
		handlers: make(map[Signal]func(*CrashInfo)),
	}
	if img != nil {
		p.LinkMap = &linker.LinkMap{Image: img, ASLRBase: as.ASLRBase}
	}
	return p
}

// ExecSpec parameterises PreserveExec.
type ExecSpec struct {
	// InfoAddr is the recovery-info pointer passed by the restart handler.
	// It must point into one of the preserved ranges.
	InfoAddr mem.VAddr
	// Ranges are the byte ranges to preserve. Full pages are moved
	// zero-copy; partial head/tail pages fall back to copying (§3.3).
	Ranges []linker.Range
	// WithSection additionally preserves the image's .phx.* sections.
	WithSection bool
}

// PreserveExec implements the PHOENIX system call: it constructs the
// successor process, moves the page-table entries of all preserved ranges
// into it at their original virtual addresses, loads the fresh image into
// the remaining gaps, and tears down the caller. The simulated clock is
// charged per the cost model (fixed exec cost + per-page PTE moves + per-page
// copies for partial pages).
func (p *Process) PreserveExec(spec ExecSpec) (*Process, error) {
	if p.dead {
		return nil, fmt.Errorf("kernel: preserve_exec on dead process %d", p.PID)
	}
	m := p.Machine
	np := &Process{
		PID:      m.allocPID(),
		Machine:  m,
		AS:       mem.NewAddressSpace(),
		Image:    p.Image,
		LinkMap:  p.LinkMap, // preserved via the private link_map syscall
		handlers: make(map[Signal]func(*CrashInfo)),
	}
	// ASLR: reuse the prior slide rather than re-randomizing (§3.3).
	np.AS.ASLRBase = p.AS.ASLRBase

	ranges := append([]linker.Range(nil), spec.Ranges...)
	if spec.WithSection && p.Image != nil {
		ranges = append(ranges, p.Image.PreservedRanges()...)
	}

	moved, copied := 0, 0
	for _, r := range ranges {
		if r.Len <= 0 {
			continue
		}
		mv, cp, err := p.transferRange(np, r)
		if err != nil {
			return nil, err
		}
		moved += mv
		copied += cp
	}
	if spec.InfoAddr != mem.NullPtr && !np.AS.Mapped(spec.InfoAddr) {
		return nil, fmt.Errorf("kernel: preserve_exec: info block %#x not in a preserved range",
			uint64(spec.InfoAddr))
	}
	// Load the fresh image into the gaps; the dynamic linker skips the
	// kernel-installed preserved ranges.
	if p.Image != nil {
		if _, err := p.Image.Load(np.AS); err != nil {
			return nil, err
		}
	}
	m.Clock.Advance(m.Model.PreserveExec(moved, copied))
	np.preserved = &Handoff{
		InfoAddr:    spec.InfoAddr,
		Ranges:      ranges,
		MovedPages:  moved,
		CopiedPages: copied,
	}
	p.dead = true
	return np, nil
}

// transferRange moves the full pages of r zero-copy and copies partial
// head/tail pages.
func (p *Process) transferRange(np *Process, r linker.Range) (moved, copied int, err error) {
	start, end := r.Start, r.End()
	alignedStart := mem.PageBase(start + mem.PageSize - 1) // round up
	alignedEnd := mem.PageBase(end)                        // round down
	if start == mem.PageBase(start) {
		alignedStart = start
	}

	// Partial head page [start, min(alignedStart,end)).
	if start < alignedStart {
		headEnd := alignedStart
		if end < headEnd {
			headEnd = end
		}
		if err := p.copyPartial(np, start, headEnd); err != nil {
			return moved, copied, err
		}
		copied++
	}
	// Full middle pages.
	if alignedEnd > alignedStart {
		n := int((alignedEnd - alignedStart) / mem.PageSize)
		mv, err := p.AS.MovePages(np.AS, alignedStart, n)
		if err != nil {
			return moved, copied, err
		}
		moved += mv
	}
	// Partial tail page [max(alignedEnd,start), end).
	if alignedEnd < end && alignedEnd >= alignedStart && alignedEnd > start {
		if err := p.copyPartial(np, alignedEnd, end); err != nil {
			return moved, copied, err
		}
		copied++
	}
	return moved, copied, nil
}

// copyPartial copies the bytes [lo,hi) (within a single page) into np,
// mapping the page there if needed.
func (p *Process) copyPartial(np *Process, lo, hi mem.VAddr) error {
	src := p.AS.FindMapping(lo)
	if src == nil {
		return fmt.Errorf("kernel: preserve range %#x unmapped in source", uint64(lo))
	}
	base := mem.PageBase(lo)
	if !np.AS.Mapped(base) {
		if _, err := np.AS.Map(base, 1, src.Kind, src.Name+"(partial)"); err != nil {
			return err
		}
	}
	buf := p.AS.ReadBytes(lo, int(hi-lo))
	np.AS.WriteAt(lo, buf)
	return nil
}

// Exec replaces the process with a fresh image and no preserved state — a
// plain restart. reason annotates why (e.g. a PHOENIX fallback).
func (p *Process) Exec(reason string) (*Process, error) {
	if p.dead {
		return nil, fmt.Errorf("kernel: exec on dead process %d", p.PID)
	}
	np, err := p.Machine.Spawn(p.Image)
	if err != nil {
		return nil, err
	}
	np.preserved = &Handoff{FallbackReason: reason}
	p.dead = true
	return np, nil
}

// Handoff returns the preserve_exec handoff if this process was created by
// one, or nil for a first start / plain restart without annotation.
func (p *Process) Handoff() *Handoff { return p.preserved }

// Dead reports whether the process has been replaced or killed.
func (p *Process) Dead() bool { return p.dead }

// Kill marks the process dead without running handlers.
func (p *Process) Kill() { p.dead = true }

// OnSignal registers a handler for sig (phx_init registers the restart
// handler for SIGSEGV this way).
func (p *Process) OnSignal(sig Signal, fn func(*CrashInfo)) {
	p.handlers[sig] = fn
}

// Deliver invokes the registered handler for the signal, if any, and reports
// whether one ran. SIGKILL never runs handlers.
func (p *Process) Deliver(info *CrashInfo) bool {
	if info.Sig == SIGKILL {
		p.dead = true
		return false
	}
	if fn := p.handlers[info.Sig]; fn != nil {
		fn(info)
		return true
	}
	return false
}

// Run executes f, converting panics that carry *mem.Fault or *Crash into a
// CrashInfo (other panics propagate — they are bugs in the simulator, not
// simulated failures). It returns nil if f completes.
func (p *Process) Run(f func()) (ci *CrashInfo) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch v := r.(type) {
		case *mem.Fault:
			ci = &CrashInfo{Sig: SIGSEGV, Reason: v.Error(), Addr: v.Addr, Time: p.Machine.Clock.Now()}
		case *Crash:
			ci = &CrashInfo{Sig: v.Sig, Reason: v.Reason, Time: p.Machine.Clock.Now()}
		default:
			panic(r)
		}
	}()
	f()
	return nil
}

// Watchdog detects hangs: if Pet is not called within Timeout of simulated
// time, Expired reports true and the supervisor forces a SIGALRM restart —
// the "added watchdog" of §2.1 and the pool-herder of §4.3.3.
type Watchdog struct {
	Timeout time.Duration
	clock   *simclock.Clock
	lastPet time.Duration
}

// NewWatchdog creates a watchdog petted at the current instant.
func (m *Machine) NewWatchdog(timeout time.Duration) *Watchdog {
	return &Watchdog{Timeout: timeout, clock: m.Clock, lastPet: m.Clock.Now()}
}

// Pet records liveness.
func (w *Watchdog) Pet() { w.lastPet = w.clock.Now() }

// Expired reports whether the timeout has elapsed since the last Pet.
func (w *Watchdog) Expired() bool {
	return w.clock.Now()-w.lastPet >= w.Timeout
}

// Deadline returns the absolute simulated time at which the watchdog fires
// if not petted again.
func (w *Watchdog) Deadline() time.Duration { return w.lastPet + w.Timeout }
