package kernel

import (
	"errors"
	"testing"

	"phoenix/internal/faultinject"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// preserveChain runs one preserve over the region and returns the successor,
// failing the test on error.
func preserveChain(t *testing.T, p *Process, region mem.VAddr, pages int) *Process {
	t.Helper()
	np, err := p.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: pages * mem.PageSize}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return np
}

// TestIncrementalPreserveReusesCleanPages is the tentpole contract: the first
// preserve hashes every resident page; a second preserve after touching a few
// pages re-hashes only those, reuses the cached sums for the rest, and still
// reports full verification coverage.
func TestIncrementalPreserveReusesCleanPages(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const pages = 64
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}

	np := preserveChain(t, p, region, pages)
	h := np.Handoff()
	if h.ReusedChecksums != 0 {
		t.Fatalf("first preserve reused %d checksums with no cache", h.ReusedChecksums)
	}
	if h.VerifiedChecksums != pages {
		t.Fatalf("VerifiedChecksums = %d, want %d", h.VerifiedChecksums, pages)
	}
	if len(h.PageSums) != pages {
		t.Fatalf("verified commit cached %d sums, want %d", len(h.PageSums), pages)
	}
	// The successor's preserved pages start clean: the commit is the baseline.
	if n := np.AS.DirtyPagesIn(region, pages); n != 0 {
		t.Fatalf("%d preserved pages dirty in successor after verified commit", n)
	}

	// Touch 3 pages, preserve again: exactly pages-3 sums are reused.
	const touched = 3
	for i := 0; i < touched; i++ {
		np.AS.WriteU64(region+mem.VAddr(i*7)*mem.PageSize, 0xBEEF)
	}
	before := m.Clock.Now()
	np2 := preserveChain(t, np, region, pages)
	elapsed := m.Clock.Now() - before
	h2 := np2.Handoff()
	if h2.ReusedChecksums != pages-touched {
		t.Fatalf("ReusedChecksums = %d, want %d", h2.ReusedChecksums, pages-touched)
	}
	if h2.VerifiedChecksums != pages {
		t.Fatalf("incremental preserve verified %d, want full coverage %d", h2.VerifiedChecksums, pages)
	}
	if got := m.Counters.ChecksumsReused.Load(); got != int64(pages-touched) {
		t.Fatalf("ChecksumsReused counter = %d, want %d", got, pages-touched)
	}
	// The charge matches the delta model: 2 hashes (stage+verify) per touched
	// page, scan over everything.
	if want := m.Model.PreserveExecDelta(pages, 0, 2*touched, pages); elapsed != want {
		t.Fatalf("incremental preserve charged %v, want %v", elapsed, want)
	}
	// And the new cache reflects the touched pages' new content.
	for i := 0; i < pages; i++ {
		pg := mem.PageOf(region) + mem.PageNum(i)
		if want := np2.AS.PageChecksum(pg); h2.PageSums[pg] != want {
			t.Fatalf("cached sum for page %d is stale: %#x != %#x", i, h2.PageSums[pg], want)
		}
	}
}

// TestIncrementalCatchesCorruptionOnCleanPage is the key adversarial case
// from the issue: a bit flip lands in the Byzantine window on a page whose
// sum was reused from the cache. FlipBit sets the frame's soft-dirty bit (an
// MMU property, not store instrumentation), so the incremental verify walk
// re-hashes exactly that page and the preserve aborts — identically to the
// full walk.
func TestIncrementalCatchesCorruptionOnCleanPage(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const pages = 16
	m := NewMachine(1)
	m.AuditIncremental = true
	inj := faultinject.New()
	inj.RegisterRecovery()
	m.Inj = inj
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	np := preserveChain(t, p, region, pages)

	// No writes at all since the commit: every sum will be a cache reuse, so
	// the flipped page is as "clean" as a page can be.
	inj.ArmAfter(faultinject.SitePreserveCorrupt, faultinject.BitFlip, 5)
	inj.Enable()
	_, err := np.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: pages * mem.PageSize}},
	})
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("corruption of a cache-clean page not caught: err=%v", err)
	}
	if m.Counters.ChecksumMismatches.Load() != 1 {
		t.Fatalf("counters: %s", m.Counters)
	}
	if got := m.Counters.IncrementalAuditDivergences.Load(); got != 0 {
		t.Fatalf("audit divergences = %d: incremental and full walks disagreed", got)
	}

	// The rolled-back source keeps its dirty bits — including the one the
	// flip set — and its cache, so a retry re-hashes the flipped page and
	// commits the (now corrupted but honestly hashed) content.
	if np.Dead() {
		t.Fatal("source dead after incremental integrity abort")
	}
	if np.AS.DirtyPagesIn(region, pages) == 0 {
		t.Fatal("rollback lost the dirty bit the corruption set")
	}
	np2 := preserveChain(t, np, region, pages)
	h := np2.Handoff()
	if h.ReusedChecksums != pages-1 {
		t.Fatalf("retry reused %d sums, want %d (all but the flipped page)", h.ReusedChecksums, pages-1)
	}
	if m.Counters.IncrementalAuditDivergences.Load() != 0 {
		t.Fatal("audit divergence on the retry")
	}
}

// TestSkipVerifyPropagatesNoBaseline pins the laundering defence: a
// SkipVerify commit hands over no checksum cache and clears no dirty bits, so
// the next verified preserve hashes everything fresh instead of trusting sums
// nothing ever verified.
func TestSkipVerifyPropagatesNoBaseline(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const pages = 8
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	np, err := p.PreserveExec(ExecSpec{
		Ranges:     []linker.Range{{Start: region, Len: pages * mem.PageSize}},
		SkipVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if np.Handoff().PageSums != nil {
		t.Fatal("SkipVerify commit handed over a checksum cache")
	}
	if n := np.AS.DirtyPagesIn(region, pages); n != pages {
		t.Fatalf("SkipVerify commit cleared dirty bits: %d/%d still set", n, pages)
	}
	np2 := preserveChain(t, np, region, pages)
	if r := np2.Handoff().ReusedChecksums; r != 0 {
		t.Fatalf("preserve after SkipVerify reused %d unverified sums", r)
	}
}

// TestMidCommitFaultKeepsDeltaBaseline: an injected mid-commit failure rolls
// the transfer back without clearing dirty bits or invalidating the cache, so
// the retry still gets the incremental win and the delta invariant holds.
func TestMidCommitFaultKeepsDeltaBaseline(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const pages = 32
	m := NewMachine(1)
	m.AuditIncremental = true
	inj := faultinject.New()
	inj.RegisterRecovery()
	m.Inj = inj
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	np := preserveChain(t, p, region, pages)

	const touched = 4
	for i := 0; i < touched; i++ {
		np.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, 0xDEAD)
	}
	dirtyBefore := np.AS.DirtyPagesIn(region, pages)

	inj.Arm(faultinject.SitePreserveMove, faultinject.OpFailure)
	inj.Enable()
	if _, err := np.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: pages * mem.PageSize}},
	}); err == nil {
		t.Fatal("injected move failure did not abort")
	}
	if np.Dead() {
		t.Fatal("source dead after mid-commit abort")
	}
	if got := np.AS.DirtyPagesIn(region, pages); got != dirtyBefore {
		t.Fatalf("mid-commit abort changed the dirty set: %d != %d", got, dirtyBefore)
	}

	np2 := preserveChain(t, np, region, pages)
	h := np2.Handoff()
	if h.ReusedChecksums != pages-touched {
		t.Fatalf("retry reused %d sums, want %d", h.ReusedChecksums, pages-touched)
	}
	for i := 0; i < pages; i++ {
		want := uint64(i) + 1
		if i < touched {
			want = 0xDEAD
		}
		if got := np2.AS.ReadU64(region + mem.VAddr(i)*mem.PageSize); got != want {
			t.Fatalf("page %d content %#x after retry, want %#x", i, got, want)
		}
	}
	if m.Counters.IncrementalAuditDivergences.Load() != 0 {
		t.Fatal("audit divergence across fault + retry")
	}
}

// TestIncrementalHandlesReleasedAndRemappedPages covers the cache-staleness
// hazards: a page the app zeroed wholesale (frame released, dirty bit kept)
// and a page unmapped and remapped (cache entry present but frame gone) must
// both re-enter the walk as fresh zero-page sums, never reuse the stale
// cached content sum.
func TestIncrementalHandlesReleasedAndRemappedPages(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const pages = 8
	m := NewMachine(1)
	m.AuditIncremental = true
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	np := preserveChain(t, p, region, pages)

	// Whole-page zero: frame released, page stays dirty.
	np.AS.Zero(region, mem.PageSize)
	// Unmap + remap the region: every frame (and dirty entry) is dropped, so
	// the cache has sums for pages that now read as zeros.
	if err := np.AS.Unmap(region); err != nil {
		t.Fatal(err)
	}
	if _, err := np.AS.Map(region, pages, mem.KindCustom, "state2"); err != nil {
		t.Fatal(err)
	}
	np2 := preserveChain(t, np, region, pages)
	h := np2.Handoff()
	if h.ReusedChecksums != 0 {
		t.Fatalf("reused %d cached sums for non-resident pages", h.ReusedChecksums)
	}
	zero := mem.Checksum(make([]byte, mem.PageSize))
	for i := 0; i < pages; i++ {
		pg := mem.PageOf(region) + mem.PageNum(i)
		if h.PageSums[pg] != zero {
			t.Fatalf("page %d cached %#x, want zero-page sum %#x", i, h.PageSums[pg], zero)
		}
	}
	if m.Counters.IncrementalAuditDivergences.Load() != 0 {
		t.Fatal("audit divergence on released/remapped pages")
	}
}
