package kernel

import "phoenix/internal/faultinject"

// SiteSpec describes one recovery-path injection site as a searchable
// dimension: which site to arm, the fault type it fires, and how deep an
// ArmAfter skip is worth exploring. Schedule-search engines (internal/explore)
// enumerate these instead of hard-coding site IDs, so a new preserve_exec
// fault site automatically joins the search space once it is listed here.
type SiteSpec struct {
	// ID is the faultinject site identifier.
	ID string
	// Type is the fault the site fires when armed (OpFailure or BitFlip).
	Type faultinject.FaultType
	// MaxSkip bounds the useful ArmAfter depth: the site executes at most
	// once per preserve_exec call (plan, load) or once per staged operation
	// (move, copy, corrupt), so skips beyond the largest plausible plan just
	// leave the fault cold.
	MaxSkip int
}

// PreserveSiteSpecs enumerates the injection sites PreserveExec consults, in
// deterministic order. Skip depths reflect how often each site executes per
// call: plan and load run once, moves run once per staged page run, copies
// once per partial page, and the corrupt site once per preserved frame.
func PreserveSiteSpecs() []SiteSpec {
	return []SiteSpec{
		{ID: faultinject.SitePreservePlan, Type: faultinject.OpFailure, MaxSkip: 0},
		{ID: faultinject.SitePreserveMove, Type: faultinject.OpFailure, MaxSkip: 4},
		{ID: faultinject.SitePreserveCopy, Type: faultinject.OpFailure, MaxSkip: 2},
		{ID: faultinject.SitePreserveLoad, Type: faultinject.OpFailure, MaxSkip: 0},
		{ID: faultinject.SitePreserveCorrupt, Type: faultinject.BitFlip, MaxSkip: 6},
	}
}

// PreserveSiteSpec returns the spec for one site ID, and whether it exists.
func PreserveSiteSpec(id string) (SiteSpec, bool) {
	for _, s := range PreserveSiteSpecs() {
		if s.ID == id {
			return s, true
		}
	}
	return SiteSpec{}, false
}
