package kernel

// Fuzz target for the preserve_exec planner geometry. The page-range split in
// planRange (full-page moves vs partial head/tail copies) is exactly where
// the seed's silent data-loss bug lived, so the planner gets a native fuzz
// target: arbitrary (start, len) pairs — two ranges, to reach the overlap
// rejection — against a known mapping, with the staged plan checked for
// byte-conservation, per-copy page containment, and checksum accounting, and
// the committed preserve checked byte-exact against the source snapshot.

import (
	"bytes"
	"testing"

	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// fuzzRegion is the only mapping in the fuzzed process, so any byte outside
// it is unmapped by construction.
const (
	fuzzRegion      = mem.VAddr(0x2000_0000)
	fuzzRegionPages = 8
	fuzzSpan        = 16 * mem.PageSize // offsets may land past the mapping
	fuzzMaxLen      = 4 * mem.PageSize
)

// moveSpan returns the aligned [lo,hi) run planRange will hand to planMove,
// or (0,0) when the range stages only partial copies.
func moveSpan(r linker.Range) (mem.VAddr, mem.VAddr) {
	if r.Len <= 0 {
		return 0, 0
	}
	lo := mem.PageBase(r.Start + mem.PageSize - 1)
	hi := mem.PageBase(r.End())
	if hi <= lo {
		return 0, 0
	}
	return lo, hi
}

func FuzzPlanRange(f *testing.F) {
	P := uint32(mem.PageSize)
	// Geometry corners: aligned/unaligned starts and ends, sub-page, page
	// boundary straddles, out-of-mapping, overlapping move spans.
	f.Add(uint32(0), uint32(100), uint32(0), uint32(0))
	f.Add(uint32(0), P, 2*P, 2*P)
	f.Add(uint32(100), 3*P-200, uint32(0), uint32(0))
	f.Add(P-50, uint32(100), 4*P, P+100)
	f.Add(uint32(0), 2*P, P, 2*P)                             // overlapping move spans
	f.Add(uint32(fuzzRegionPages)*P, P, uint32(0), uint32(0)) // starts exactly past the mapping
	f.Add(uint32(7)*P+100, P, uint32(0), uint32(0))           // runs off the mapping end

	f.Fuzz(func(t *testing.T, off1, len1, off2, len2 uint32) {
		m := NewMachine(1)
		p, err := m.Spawn(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AS.Map(fuzzRegion, fuzzRegionPages, mem.KindCustom, "state"); err != nil {
			t.Fatal(err)
		}
		// Deterministic non-trivial content so byte-exactness means something.
		fill := make([]byte, fuzzRegionPages*mem.PageSize)
		for i := range fill {
			fill[i] = byte(i*7 + 13)
		}
		p.AS.WriteAt(fuzzRegion, fill)

		regionEnd := fuzzRegion + mem.VAddr(fuzzRegionPages*mem.PageSize)
		mkRange := func(off, length uint32) linker.Range {
			return linker.Range{
				Start: fuzzRegion + mem.VAddr(off)%mem.VAddr(fuzzSpan),
				Len:   int(length % uint32(fuzzMaxLen)),
			}
		}
		r1, r2 := mkRange(off1, len1), mkRange(off2, len2)
		inBounds := func(r linker.Range) bool {
			return r.Len <= 0 || (r.Start >= fuzzRegion && r.End() <= regionEnd)
		}
		lo1, hi1 := moveSpan(r1)
		lo2, hi2 := moveSpan(r2)
		movesOverlap := hi1 > lo1 && hi2 > lo2 && lo1 < hi2 && lo2 < hi1

		plan, err := p.stagePreserve([]linker.Range{r1, r2}, mem.NullPtr)
		if err != nil {
			if inBounds(r1) && inBounds(r2) && !movesOverlap {
				t.Fatalf("in-bounds non-overlapping ranges %+v %+v rejected: %v", r1, r2, err)
			}
			return
		}
		if !inBounds(r1) || !inBounds(r2) {
			t.Fatalf("range leaving the only mapping was staged: %+v %+v", r1, r2)
		}

		// Byte conservation: every byte of every range is staged exactly once
		// within its own range, as a full-page move or a partial copy.
		want := 0
		for _, r := range []linker.Range{r1, r2} {
			if r.Len > 0 {
				want += r.Len
			}
		}
		staged := plan.moved * mem.PageSize
		for _, c := range plan.copies {
			if len(c.data) == 0 || len(c.data) > mem.PageSize {
				t.Fatalf("partial copy of %d bytes at %#x", len(c.data), uint64(c.addr))
			}
			if mem.PageOf(c.addr) != mem.PageOf(c.addr+mem.VAddr(len(c.data))-1) {
				t.Fatalf("partial copy at %#x crosses a page boundary (%d bytes)", uint64(c.addr), len(c.data))
			}
			if c.sum != mem.Checksum(c.data) {
				t.Fatalf("copy checksum staged from other bytes at %#x", uint64(c.addr))
			}
			staged += len(c.data)
		}
		if staged != want {
			t.Fatalf("plan stages %d bytes for %d bytes of ranges (%+v %+v)", staged, want, r1, r2)
		}

		// Checksum and move accounting.
		if plan.copied != len(plan.copies) {
			t.Fatalf("copied=%d but %d copies staged", plan.copied, len(plan.copies))
		}
		sums := 0
		for _, mv := range plan.moves {
			if mv.start%mem.PageSize != 0 {
				t.Fatalf("unaligned page move at %#x", uint64(mv.start))
			}
			if len(mv.sums) != mv.pages {
				t.Fatalf("move of %d pages staged %d checksums", mv.pages, len(mv.sums))
			}
			sums += mv.pages
		}
		if sums != plan.moved {
			t.Fatalf("moved=%d but %d per-page checksums staged", plan.moved, sums)
		}
		if len(plan.movePages) != plan.moved {
			t.Fatalf("moved=%d but movePages tracks %d (duplicate claim slipped through)", plan.moved, len(plan.movePages))
		}
		if plan.checksums() != plan.moved+len(plan.copies) {
			t.Fatalf("checksums()=%d, want moved+copies=%d", plan.checksums(), plan.moved+len(plan.copies))
		}

		// Commit the same geometry for real: the successor must read back the
		// exact bytes of both ranges, and the handoff counts must match the
		// staged plan.
		var snap1, snap2 []byte
		if r1.Len > 0 {
			snap1 = p.AS.ReadBytes(r1.Start, r1.Len)
		}
		if r2.Len > 0 {
			snap2 = p.AS.ReadBytes(r2.Start, r2.Len)
		}
		np, err := p.PreserveExec(ExecSpec{Ranges: []linker.Range{r1, r2}})
		if err != nil {
			t.Fatalf("stageable geometry failed to commit: %v", err)
		}
		if r1.Len > 0 && !bytes.Equal(np.AS.ReadBytes(r1.Start, r1.Len), snap1) {
			t.Fatalf("range %+v not preserved byte-exactly", r1)
		}
		if r2.Len > 0 && !bytes.Equal(np.AS.ReadBytes(r2.Start, r2.Len), snap2) {
			t.Fatalf("range %+v not preserved byte-exactly", r2)
		}
		h := np.Handoff()
		if h.MovedPages != plan.moved || h.CopiedPages != plan.copied {
			t.Fatalf("handoff %d moved / %d copied, plan staged %d / %d",
				h.MovedPages, h.CopiedPages, plan.moved, plan.copied)
		}
	})
}
