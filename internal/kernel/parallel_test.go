package kernel

// The parallel preserve walks must be invisible: whatever the worker-pool
// width, the staged plan, the handoff accounting, the checksum cache, the
// destination bytes, and the simulated clock are byte-identical to the
// serial walk's. These tests (and FuzzParallelPreserveMergeOrder) pin that
// merge-order contract, which is what same-seed campaign byte-identity and
// the explore replay gate stand on.

import (
	"bytes"
	"testing"

	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

const (
	parBase  = mem.VAddr(0x3000_0000)
	parAux   = mem.VAddr(0x3800_0000)
	parPages = 12
)

// preserveTwice builds a process with a full-page region plus a sub-page
// range (so the plan stages both moves and partial copies), preserves it to
// establish the checksum cache, rewrites the pages selected by dirtyMask,
// and preserves again. It returns the final process.
func preserveTwice(t *testing.T, workers int, dirtyMask uint32, fill byte) *Process {
	t.Helper()
	m := NewMachine(42)
	m.PreserveWorkers = workers
	p, err := m.Spawn(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AS.Map(parBase, parPages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AS.Map(parAux, 1, mem.KindCustom, "aux"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, parPages*mem.PageSize)
	for i := range buf {
		buf[i] = byte(i*11) + fill
	}
	p.AS.WriteAt(parBase, buf)
	p.AS.WriteAt(parAux+100, []byte("partial-page payload"))

	spec := ExecSpec{
		InfoAddr: parBase,
		Ranges: []linker.Range{
			{Start: parBase, Len: parPages * mem.PageSize},
			{Start: parAux + 100, Len: 300},
		},
	}
	np, err := p.PreserveExec(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < parPages; i++ {
		if dirtyMask&(1<<i) != 0 {
			np.AS.WriteU64(parBase+mem.VAddr(i)*mem.PageSize+8, uint64(dirtyMask)*31+uint64(i))
		}
	}
	np2, err := np.PreserveExec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return np2
}

// samePreserve asserts two final processes are indistinguishable: handoff
// accounting, checksum cache, page contents, dirty bits, and machine clock.
func samePreserve(t *testing.T, a, b *Process) {
	t.Helper()
	ha, hb := a.Handoff(), b.Handoff()
	if ha.MovedPages != hb.MovedPages || ha.CopiedPages != hb.CopiedPages ||
		ha.VerifiedChecksums != hb.VerifiedChecksums || ha.ReusedChecksums != hb.ReusedChecksums {
		t.Fatalf("handoff accounting diverged: %+v vs %+v", ha, hb)
	}
	if len(ha.PageSums) != len(hb.PageSums) {
		t.Fatalf("checksum cache size diverged: %d vs %d", len(ha.PageSums), len(hb.PageSums))
	}
	for pg, sa := range ha.PageSums {
		if sb, ok := hb.PageSums[pg]; !ok || sb != sa {
			t.Fatalf("checksum cache diverged at page %d: %#x vs %#x (present=%v)", pg, sa, sb, ok)
		}
	}
	for i := 0; i < parPages; i++ {
		addr := parBase + mem.VAddr(i)*mem.PageSize
		pg := mem.PageOf(addr)
		if !bytes.Equal(a.AS.ReadBytes(addr, mem.PageSize), b.AS.ReadBytes(addr, mem.PageSize)) {
			t.Fatalf("page %d contents diverged", i)
		}
		if a.AS.PageDirty(pg) != b.AS.PageDirty(pg) {
			t.Fatalf("page %d dirty bit diverged", i)
		}
	}
	if !bytes.Equal(a.AS.ReadBytes(parAux+100, 300), b.AS.ReadBytes(parAux+100, 300)) {
		t.Fatal("partial-copy bytes diverged")
	}
	if an, bn := a.Machine.Clock.Now(), b.Machine.Clock.Now(); an != bn {
		t.Fatalf("simulated clocks diverged: %v vs %v", an, bn)
	}
}

func TestParallelPreserveByteIdentity(t *testing.T) {
	for _, mask := range []uint32{0, 1, 0b101, 0xFFF} {
		serial := preserveTwice(t, 1, mask, 3)
		for _, w := range []int{2, 4, 8} {
			samePreserve(t, serial, preserveTwice(t, w, mask, 3))
		}
	}
}

func TestParallelMigrationByteIdentity(t *testing.T) {
	run := func(workers int) (*Process, *Machine, []RoundStats) {
		src := NewMachine(7)
		src.PreserveWorkers = workers
		p, err := src.Spawn(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AS.Map(parBase, parPages, mem.KindCustom, "state"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < parPages; i++ {
			p.AS.WriteU64(parBase+mem.VAddr(i)*mem.PageSize, uint64(i)+100)
		}
		spec := ExecSpec{
			InfoAddr: parBase,
			Ranges:   []linker.Range{{Start: parBase, Len: parPages * mem.PageSize}},
		}
		dst := NewMachine(8)
		dst.PreserveWorkers = workers
		mg, err := StartMigration(p, dst, func() (ExecSpec, error) { return spec, nil })
		if err != nil {
			t.Fatal(err)
		}
		var stats []RoundStats
		st, err := mg.DeltaRound()
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
		// Dirty a few pages between rounds, including one rewritten with
		// identical bytes (hashed but not shipped).
		p.AS.WriteU64(parBase+2*mem.PageSize, 999)
		p.AS.WriteU64(parBase+5*mem.PageSize, uint64(5)+100)
		if st, err = mg.DeltaRound(); err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
		np, st, err := mg.Cutover()
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
		return np, dst, stats
	}

	np1, dst1, st1 := run(1)
	for _, w := range []int{4, 8} {
		npW, dstW, stW := run(w)
		for i := range st1 {
			if st1[i] != stW[i] {
				t.Fatalf("round %d stats diverged between workers=1 and workers=%d: %+v vs %+v", i, w, st1[i], stW[i])
			}
		}
		for i := 0; i < parPages; i++ {
			addr := parBase + mem.VAddr(i)*mem.PageSize
			if !bytes.Equal(np1.AS.ReadBytes(addr, mem.PageSize), npW.AS.ReadBytes(addr, mem.PageSize)) {
				t.Fatalf("migrated page %d diverged between workers=1 and workers=%d", i, w)
			}
		}
		if dst1.Clock.Now() != dstW.Clock.Now() {
			t.Fatalf("destination clocks diverged: %v vs %v", dst1.Clock.Now(), dstW.Clock.Now())
		}
	}
}

// FuzzParallelPreserveMergeOrder: for arbitrary dirty sets, content, and
// pool widths, the parallel staging produces byte-identical plans vs the
// serial path.
func FuzzParallelPreserveMergeOrder(f *testing.F) {
	f.Add(uint32(0), uint8(4), uint8(0))
	f.Add(uint32(1), uint8(2), uint8(7))
	f.Add(uint32(0b1010_1010_1010), uint8(8), uint8(200))
	f.Add(uint32(0xFFFFFFFF), uint8(3), uint8(42))

	f.Fuzz(func(t *testing.T, mask uint32, workers, fill uint8) {
		w := 2 + int(workers)%(maxPreserveWorkers-1)
		serial := preserveTwice(t, 1, mask, byte(fill))
		parallel := preserveTwice(t, w, mask, byte(fill))
		samePreserve(t, serial, parallel)
	})
}
