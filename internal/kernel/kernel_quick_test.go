package kernel

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// Property: preserve_exec preserves arbitrary content byte-for-byte across
// arbitrary sets of preserved ranges, and never leaks non-preserved pages
// into the successor.
func TestQuickPreserveExecContent(t *testing.T) {
	f := func(fills [][]byte, preserveMask uint8) bool {
		m := NewMachine(1)
		p, err := m.Spawn(nil)
		if err != nil {
			return false
		}
		// Eight regions of 2 pages each; the mask selects which to preserve.
		type region struct {
			start mem.VAddr
			data  []byte
		}
		var regions []region
		for i := 0; i < 8; i++ {
			start := mem.VAddr(0x1000_0000 + i*0x10000)
			if _, err := p.AS.Map(start, 2, mem.KindCustom, "r"); err != nil {
				return false
			}
			data := []byte{byte(i), byte(i + 1), byte(i + 2)}
			if i < len(fills) && len(fills[i]) > 0 {
				data = fills[i]
				if len(data) > 2*mem.PageSize {
					data = data[:2*mem.PageSize]
				}
			}
			p.AS.WriteAt(start, data)
			regions = append(regions, region{start, data})
		}
		var ranges []linker.Range
		for i, r := range regions {
			if preserveMask&(1<<i) != 0 {
				ranges = append(ranges, linker.Range{Start: r.start, Len: 2 * mem.PageSize})
			}
		}
		np, err := p.PreserveExec(ExecSpec{Ranges: ranges})
		if err != nil {
			return false
		}
		for i, r := range regions {
			preserved := preserveMask&(1<<i) != 0
			if preserved {
				if !bytes.Equal(np.AS.ReadBytes(r.start, len(r.data)), r.data) {
					return false
				}
			} else if np.AS.Mapped(r.start) {
				return false // discarded region leaked into the successor
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: preserve_exec cost is monotone in the number of preserved
// pages.
func TestQuickPreserveExecCostMonotone(t *testing.T) {
	prev := time.Duration(0)
	for pages := 1; pages <= 4096; pages *= 4 {
		m := NewMachine(1)
		p, _ := m.Spawn(nil)
		if _, err := p.AS.Map(0x1000_0000, pages, mem.KindCustom, "r"); err != nil {
			t.Fatal(err)
		}
		before := m.Clock.Now()
		if _, err := p.PreserveExec(ExecSpec{
			Ranges: []linker.Range{{Start: 0x1000_0000, Len: pages * mem.PageSize}},
		}); err != nil {
			t.Fatal(err)
		}
		cost := m.Clock.Now() - before
		if cost <= prev {
			t.Fatalf("cost not monotone at %d pages: %v <= %v", pages, cost, prev)
		}
		prev = cost
	}
}

// Property: chains of PHOENIX restarts keep preserving the same content.
func TestQuickRestartChain(t *testing.T) {
	f := func(seed int64, content []byte) bool {
		if len(content) == 0 {
			content = []byte{1}
		}
		if len(content) > mem.PageSize {
			content = content[:mem.PageSize]
		}
		m := NewMachine(seed)
		p, err := m.Spawn(nil)
		if err != nil {
			return false
		}
		const start = mem.VAddr(0x2000_0000)
		if _, err := p.AS.Map(start, 1, mem.KindCustom, "c"); err != nil {
			return false
		}
		p.AS.WriteAt(start, content)
		for hop := 0; hop < 5; hop++ {
			np, err := p.PreserveExec(ExecSpec{
				InfoAddr: start,
				Ranges:   []linker.Range{{Start: start, Len: mem.PageSize}},
			})
			if err != nil {
				return false
			}
			p = np
			if !bytes.Equal(p.AS.ReadBytes(start, len(content)), content) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
