package kernel

import (
	"bytes"
	"testing"

	"phoenix/internal/faultinject"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// TestPreserveSubPageAlignedStart is the regression repro for the silent
// data-loss bug: a preserved range shorter than a page whose start is
// page-aligned used to transfer nothing (the old tail guard `alignedEnd >
// start` was false when they were equal).
func TestPreserveSubPageAlignedStart(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	const region = mem.VAddr(0x2000_0000)
	if _, err := p.AS.Map(region, 4, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	p.AS.WriteU64(region, 0xFEED_FACE_CAFE_F00D)

	np, err := p.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := np.AS.ReadU64(region); got != 0xFEED_FACE_CAFE_F00D {
		t.Fatalf("sub-page aligned range lost: read %#x", got)
	}
	h := np.Handoff()
	if h.MovedPages != 0 || h.CopiedPages != 1 {
		t.Fatalf("want 0 moved / 1 copied, got %d / %d", h.MovedPages, h.CopiedPages)
	}
}

// TestPreserveGeometry covers aligned/unaligned start × aligned/unaligned end
// × sub-page/multi-page ranges, asserting byte-exact preservation and the
// moved/copied page counts.
func TestPreserveGeometry(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const P = mem.PageSize
	cases := []struct {
		name   string
		start  mem.VAddr
		length int
		moved  int
		copied int
	}{
		{"aligned-start-subpage", region, 100, 0, 1},
		{"aligned-full-page", region, int(P), 1, 0},
		{"aligned-multipage", region, int(2 * P), 2, 0},
		{"aligned-start-unaligned-end", region, int(P) + 100, 1, 1},
		{"unaligned-start-aligned-end", region + 100, int(2*P) - 100, 1, 1},
		{"unaligned-both-multipage", region + 100, int(3*P) - 200, 1, 2},
		{"subpage-interior", region + 100, 200, 0, 1},
		{"subpage-straddles-boundary", region + P - 50, 100, 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(1)
			p, _ := m.Spawn(nil)
			if _, err := p.AS.Map(region, 4, mem.KindCustom, "state"); err != nil {
				t.Fatal(err)
			}
			want := make([]byte, tc.length)
			for i := range want {
				want[i] = byte(i%251 + 1)
			}
			p.AS.WriteAt(tc.start, want)

			np, err := p.PreserveExec(ExecSpec{
				Ranges: []linker.Range{{Start: tc.start, Len: tc.length}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := np.AS.ReadBytes(tc.start, tc.length); !bytes.Equal(got, want) {
				t.Fatalf("preserved bytes differ from source")
			}
			h := np.Handoff()
			if h.MovedPages != tc.moved || h.CopiedPages != tc.copied {
				t.Fatalf("want %d moved / %d copied, got %d / %d",
					tc.moved, tc.copied, h.MovedPages, h.CopiedPages)
			}
		})
	}
}

// TestPreserveValidationLeavesSourceIntact checks phase one of the
// crash-atomicity contract: a plan that fails validation returns before
// anything is mutated, and the same process can immediately preserve again.
func TestPreserveValidationLeavesSourceIntact(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(testImage())
	const region = mem.VAddr(0x2000_0000)
	if _, err := p.AS.Map(region, 2, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	p.AS.WriteU64(region, 4242)

	// Half the range is unmapped: validation must reject it.
	_, err := p.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: int(4 * mem.PageSize)}},
	})
	if err == nil {
		t.Fatal("preserve of partially unmapped range succeeded")
	}
	if p.Dead() {
		t.Fatal("source process dead after rejected preserve")
	}
	if p.AS.ReadU64(region) != 4242 {
		t.Fatal("source mutated by rejected preserve")
	}
	if got := m.Counters.PreservesAborted.Load(); got != 1 {
		t.Fatalf("PreservesAborted = %d, want 1", got)
	}
	if m.Counters.PreservesStaged.Load() != 0 {
		t.Fatalf("PreservesStaged = %d, want 0 (plan never validated)", m.Counters.PreservesStaged.Load())
	}

	// Overlapping full-page ranges are a plan error too.
	_, err = p.PreserveExec(ExecSpec{
		Ranges: []linker.Range{
			{Start: region, Len: int(2 * mem.PageSize)},
			{Start: region, Len: int(mem.PageSize)},
		},
	})
	if err == nil {
		t.Fatal("overlapping move ranges accepted")
	}

	// The same process preserves fine once the plan is valid.
	np, err := p.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: int(2 * mem.PageSize)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if np.AS.ReadU64(region) != 4242 {
		t.Fatal("retry after rejected plans lost data")
	}
	if m.Counters.PreservesStaged.Load() != 1 || m.Counters.PreservesCommitted.Load() != 1 {
		t.Fatalf("counters after success: %s", m.Counters)
	}
}

// TestPreserveInjectedFaultsRollBack arms each recovery-path injection site
// in turn and checks the commit rolls back: the source stays alive and
// byte-identical, no clock time is charged, the abort is counted, and an
// immediate retry (the fault fires once) succeeds.
func TestPreserveInjectedFaultsRollBack(t *testing.T) {
	const r1 = mem.VAddr(0x2000_0000)
	const r2 = mem.VAddr(0x3000_0000)
	cases := []struct {
		name string
		site string
		skip int
	}{
		{"plan-commit-crash", faultinject.SitePreservePlan, 0},
		{"first-move", faultinject.SitePreserveMove, 0},
		{"second-move", faultinject.SitePreserveMove, 1},
		{"partial-copy", faultinject.SitePreserveCopy, 0},
		{"image-load", faultinject.SitePreserveLoad, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(1)
			inj := faultinject.New()
			inj.RegisterRecovery()
			m.Inj = inj
			p, _ := m.Spawn(testImage())
			if _, err := p.AS.Map(r1, 2, mem.KindCustom, "a"); err != nil {
				t.Fatal(err)
			}
			if _, err := p.AS.Map(r2, 3, mem.KindCustom, "b"); err != nil {
				t.Fatal(err)
			}
			p.AS.WriteU64(r1, 1111)
			p.AS.WriteU64(r1+mem.PageSize, 2222)
			tail := r2 + 2*mem.PageSize
			p.AS.WriteU64(tail, 3333)
			// Two full-page move ranges plus an unaligned tail so the copy
			// site executes.
			spec := ExecSpec{
				InfoAddr: r1,
				Ranges: []linker.Range{
					{Start: r1, Len: int(2 * mem.PageSize)},
					{Start: r2, Len: int(2*mem.PageSize) + 100},
				},
			}

			inj.ArmAfter(tc.site, faultinject.OpFailure, tc.skip)
			inj.Enable()
			before := m.Clock.Now()
			if _, err := p.PreserveExec(spec); err == nil {
				t.Fatal("injected fault did not fail preserve_exec")
			}
			if !inj.Fired(tc.site) {
				t.Fatal("armed fault never fired")
			}
			if p.Dead() {
				t.Fatal("source dead after aborted preserve")
			}
			if m.Clock.Now() != before {
				t.Fatal("aborted preserve charged clock time")
			}
			if p.AS.ReadU64(r1) != 1111 || p.AS.ReadU64(r1+mem.PageSize) != 2222 ||
				p.AS.ReadU64(tail) != 3333 {
				t.Fatal("source bytes corrupted by aborted preserve")
			}
			if m.Counters.PreservesAborted.Load() != 1 {
				t.Fatalf("PreservesAborted = %d, want 1", m.Counters.PreservesAborted.Load())
			}

			// The fault fired once; the retry must fully succeed.
			np, err := p.PreserveExec(spec)
			if err != nil {
				t.Fatalf("retry after injected abort: %v", err)
			}
			if np.AS.ReadU64(r1) != 1111 || np.AS.ReadU64(r1+mem.PageSize) != 2222 ||
				np.AS.ReadU64(tail) != 3333 {
				t.Fatal("retry lost preserved data")
			}
			if m.Counters.PreservesCommitted.Load() != 1 {
				t.Fatalf("counters after retry: %s", m.Counters)
			}
		})
	}
}

// TestPreserveInfoAddrMessage keeps the historical error text for an info
// block outside every preserved range.
func TestPreserveInfoAddrMessage(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	const region = mem.VAddr(0x2000_0000)
	if _, err := p.AS.Map(region, 2, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	_, err := p.PreserveExec(ExecSpec{
		InfoAddr: region + 8*mem.PageSize,
		Ranges:   []linker.Range{{Start: region, Len: int(mem.PageSize)}},
	})
	if err == nil {
		t.Fatal("info block outside preserved ranges accepted")
	}
	if p.Dead() {
		t.Fatal("source dead after rejected info block")
	}
}

// TestASLRSlideEntropy checks the widened draw: every slide is page-aligned,
// at or above the 1<<45 floor (clear of image and heap layouts), below the
// 28-bit ceiling, and the draws actually spread.
func TestASLRSlideEntropy(t *testing.T) {
	m := NewMachine(7)
	const floor = mem.VAddr(1) << 45
	const ceil = floor + (mem.VAddr(1)<<28+1)<<mem.PageShift
	seen := make(map[mem.VAddr]bool)
	for i := 0; i < 64; i++ {
		s := m.aslrSlide()
		if s < floor || s >= ceil {
			t.Fatalf("slide %#x outside [%#x,%#x)", uint64(s), uint64(floor), uint64(ceil))
		}
		if s%mem.PageSize != 0 {
			t.Fatalf("slide %#x not page-aligned", uint64(s))
		}
		seen[s] = true
	}
	if len(seen) < 60 {
		t.Fatalf("only %d distinct slides in 64 draws — entropy too narrow", len(seen))
	}
}
