package kernel

import (
	"bytes"
	"errors"
	"testing"

	"phoenix/internal/faultinject"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// TestPreserveChecksumRoundTrip checks the integrity pipeline end to end for
// the same geometry matrix the transfer tests use: checksums are staged for
// every moved page and partial copy, verified clean in the new address
// space, and reported through both the handoff and the machine counters.
func TestPreserveChecksumRoundTrip(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const P = mem.PageSize
	cases := []struct {
		name   string
		start  mem.VAddr
		length int
		sums   int // moved pages + partial copies
	}{
		{"aligned-full-page", region, int(P), 1},
		{"aligned-start-unaligned-end", region, int(P) + 100, 2},
		{"unaligned-both-multipage", region + 100, int(3*P) - 200, 3},
		{"subpage-straddles-boundary", region + P - 50, 100, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(1)
			p, _ := m.Spawn(nil)
			if _, err := p.AS.Map(region, 4, mem.KindCustom, "state"); err != nil {
				t.Fatal(err)
			}
			want := make([]byte, tc.length)
			for i := range want {
				want[i] = byte(i%251 + 1)
			}
			p.AS.WriteAt(tc.start, want)

			np, err := p.PreserveExec(ExecSpec{
				Ranges: []linker.Range{{Start: tc.start, Len: tc.length}},
			})
			if err != nil {
				t.Fatal(err)
			}
			h := np.Handoff()
			if h.VerifiedChecksums != tc.sums {
				t.Fatalf("VerifiedChecksums = %d, want %d", h.VerifiedChecksums, tc.sums)
			}
			if got := m.Counters.ChecksumsVerified.Load(); got != int64(tc.sums) {
				t.Fatalf("ChecksumsVerified = %d, want %d", got, tc.sums)
			}
			if m.Counters.ChecksumMismatches.Load() != 0 {
				t.Fatalf("spurious mismatch: %s", m.Counters)
			}
			if got := np.AS.ReadBytes(tc.start, tc.length); !bytes.Equal(got, want) {
				t.Fatal("preserved bytes differ from source")
			}
		})
	}
}

// TestPreserveCorruptionCaught arms the Byzantine corruption site at several
// depths: the bit flip lands in the new address space between commit and
// verification, the checksum catches it, and the preserve aborts with an
// IntegrityError instead of booting a corrupt successor. The rollback
// contract is the honest Byzantine one: a flipped *copied* frame leaves the
// source byte-identical (the source bytes were never touched), while a
// flipped *moved* frame has only one physical copy, so the source gets the
// corruption back — which is exactly why the driver answers an
// IntegrityError with a memory-discarding fallback, never a retry.
func TestPreserveCorruptionCaught(t *testing.T) {
	const r1 = mem.VAddr(0x2000_0000)
	const r2 = mem.VAddr(0x3000_0000)
	// The plan has four moved pages then one partial copy; skip 4 lands the
	// flip on the copied (partial-page) frame.
	for _, tc := range []struct {
		name         string
		skip         int
		sourceIntact bool
	}{
		{"first-moved-frame", 0, false},
		{"second-moved-frame", 1, false},
		{"partial-copy-frame", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(1)
			inj := faultinject.New()
			inj.RegisterRecovery()
			m.Inj = inj
			p, _ := m.Spawn(testImage())
			if _, err := p.AS.Map(r1, 2, mem.KindCustom, "a"); err != nil {
				t.Fatal(err)
			}
			if _, err := p.AS.Map(r2, 3, mem.KindCustom, "b"); err != nil {
				t.Fatal(err)
			}
			p.AS.WriteU64(r1, 1111)
			p.AS.WriteU64(r1+mem.PageSize, 2222)
			tail := r2 + 2*mem.PageSize
			p.AS.WriteU64(tail, 3333)
			spec := ExecSpec{
				InfoAddr: r1,
				Ranges: []linker.Range{
					{Start: r1, Len: int(2 * mem.PageSize)},
					{Start: r2, Len: int(2*mem.PageSize) + 100},
				},
			}

			inj.ArmAfter(faultinject.SitePreserveCorrupt, faultinject.BitFlip, tc.skip)
			inj.Enable()
			before := m.Clock.Now()
			_, err := p.PreserveExec(spec)
			if err == nil {
				t.Fatal("corrupted preserve committed")
			}
			var ie *IntegrityError
			if !errors.As(err, &ie) {
				t.Fatalf("error is not an IntegrityError: %v", err)
			}
			if ie.Want == ie.Got {
				t.Fatalf("IntegrityError carries equal checksums: %v", ie)
			}
			if !inj.Fired(faultinject.SitePreserveCorrupt) {
				t.Fatal("armed corruption never fired")
			}
			if p.Dead() {
				t.Fatal("source dead after integrity abort")
			}
			if m.Clock.Now() != before {
				t.Fatal("integrity abort charged clock time")
			}
			if tc.sourceIntact {
				if p.AS.ReadU64(r1) != 1111 || p.AS.ReadU64(r1+mem.PageSize) != 2222 ||
					p.AS.ReadU64(tail) != 3333 {
					t.Fatal("copy-frame corruption leaked into the source")
				}
			}
			// Whatever the frame contents, every mapping must still be
			// readable — the abort may not tear the address space.
			_ = p.AS.ReadBytes(r1, int(2*mem.PageSize))
			_ = p.AS.ReadBytes(r2, int(2*mem.PageSize)+100)
			if m.Counters.ChecksumMismatches.Load() != 1 || m.Counters.PreservesAborted.Load() != 1 {
				t.Fatalf("counters: %s", m.Counters)
			}

			// The driver's answer to an IntegrityError is a plain fallback
			// exec — discard memory, boot fresh. That must always work.
			np, err := p.Exec("preserved-state corruption detected")
			if err != nil {
				t.Fatalf("fallback exec after integrity abort: %v", err)
			}
			if np.Dead() {
				t.Fatal("fallback successor dead")
			}
		})
	}
}

// TestPreserveCopyCorruptionRetryCleans checks the fire-once latch end to
// end for the copy path: after a caught copy-frame flip the source is
// pristine, so an immediate retry commits with every checksum verifying.
func TestPreserveCopyCorruptionRetryCleans(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	m := NewMachine(1)
	inj := faultinject.New()
	inj.RegisterRecovery()
	m.Inj = inj
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, 2, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	p.AS.WriteU64(region, 7777)
	// A sub-page range: the plan is a single partial copy, no moves.
	spec := ExecSpec{Ranges: []linker.Range{{Start: region, Len: 100}}}

	inj.Arm(faultinject.SitePreserveCorrupt, faultinject.BitFlip)
	inj.Enable()
	if _, err := p.PreserveExec(spec); err == nil {
		t.Fatal("corrupted copy committed")
	}
	if p.AS.ReadU64(region) != 7777 {
		t.Fatal("copy corruption touched the source")
	}
	np, err := p.PreserveExec(spec)
	if err != nil {
		t.Fatalf("retry after copy-frame abort: %v", err)
	}
	if np.AS.ReadU64(region) != 7777 {
		t.Fatal("retry lost preserved data")
	}
	if np.Handoff().VerifiedChecksums != 1 {
		t.Fatalf("VerifiedChecksums = %d, want 1", np.Handoff().VerifiedChecksums)
	}
}

// TestPreserveSkipVerifyPassesCorruptionThrough pins the DisableChecksums
// semantics: with SkipVerify set, the staged checksums are not re-verified,
// so an injected bit flip survives into the successor — the exact failure
// mode verification exists to prevent.
func TestPreserveSkipVerifyPassesCorruptionThrough(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	m := NewMachine(1)
	inj := faultinject.New()
	inj.RegisterRecovery()
	m.Inj = inj
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, 2, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 2*mem.PageSize)
	for i := range want {
		want[i] = byte(i%251 + 1)
	}
	p.AS.WriteAt(region, want)

	inj.Arm(faultinject.SitePreserveCorrupt, faultinject.BitFlip)
	inj.Enable()
	np, err := p.PreserveExec(ExecSpec{
		Ranges:     []linker.Range{{Start: region, Len: len(want)}},
		SkipVerify: true,
	})
	if err != nil {
		t.Fatalf("SkipVerify preserve aborted: %v", err)
	}
	if !inj.Fired(faultinject.SitePreserveCorrupt) {
		t.Fatal("armed corruption never fired")
	}
	if np.Handoff().VerifiedChecksums != 0 {
		t.Fatalf("VerifiedChecksums = %d with SkipVerify", np.Handoff().VerifiedChecksums)
	}
	if m.Counters.ChecksumMismatches.Load() != 0 {
		t.Fatalf("mismatch counted despite SkipVerify: %s", m.Counters)
	}
	if got := np.AS.ReadBytes(region, len(want)); bytes.Equal(got, want) {
		t.Fatal("bit flip did not survive — SkipVerify test exercised nothing")
	}
}
