package kernel

import (
	"runtime"
	"sync"
)

// The preserve hot loops — checksum staging in planMove, the post-commit
// verify walk, and the migration stamp scan/re-hash — are embarrassingly
// parallel page walks over a quiescent address space. They run over a
// bounded worker pool of host goroutines; every worker owns a contiguous
// disjoint index range and writes only slots in that range, and the caller
// merges the staged per-index results serially in page order. Scheduling
// order therefore never leaks into the outcome: the plans, checksums,
// counters, and the simulated clock are byte-identical whatever the worker
// count, which is what keeps same-seed campaign JSONs and the explore
// replay gate intact. (The simulated clock charge stays the serial delta
// model; the modelled parallel-commit latency is a separate costmodel
// formula the perf trajectory reports.)

// maxPreserveWorkers bounds the pool regardless of configuration: the walks
// are memory-bound, so wider pools stop paying long before high core counts.
const maxPreserveWorkers = 8

// preserveWorkers resolves the machine's configured pool width: 0 means one
// worker per host CPU (bounded), anything explicit is clamped to the bound.
func (m *Machine) preserveWorkers() int {
	w := m.PreserveWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > maxPreserveWorkers {
		w = maxPreserveWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRanges splits [0, n) into at most workers contiguous chunks and
// runs fn over each concurrently, returning when all chunks are done. fn
// must confine its writes to index-owned slots. workers <= 1 (or a single
// chunk) runs inline on the caller's goroutine.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
