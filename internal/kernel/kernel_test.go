package kernel

import (
	"testing"
	"time"

	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

func testImage() *linker.Image {
	b := linker.NewBuilder("app", 0x0010_0000)
	v := b.Var("counter", 8, linker.SecData)
	b.VarInit(v, []byte{42})
	b.Var("pools", 64, linker.SecPhxData)
	return b.Build()
}

func TestSpawnChargesExec(t *testing.T) {
	m := NewMachine(1)
	before := m.Clock.Now()
	p, err := m.Spawn(testImage())
	if err != nil {
		t.Fatal(err)
	}
	if m.Clock.Now()-before != m.Model.ExecBase {
		t.Fatalf("spawn charged %v, want %v", m.Clock.Now()-before, m.Model.ExecBase)
	}
	if p.AS.ASLRBase == 0 {
		t.Fatal("no ASLR slide chosen")
	}
	if v := p.AS.ReadU8(p.Image.Vars["counter"].Addr); v != 42 {
		t.Fatalf("image not loaded: counter = %d", v)
	}
}

func TestPIDsDistinct(t *testing.T) {
	m := NewMachine(1)
	p1, _ := m.Spawn(nil)
	p2, _ := m.Spawn(nil)
	if p1.PID == p2.PID {
		t.Fatal("duplicate PIDs")
	}
}

func TestPreserveExecMovesRanges(t *testing.T) {
	m := NewMachine(1)
	p, err := m.Spawn(testImage())
	if err != nil {
		t.Fatal(err)
	}
	// A custom preserved region holding the recovery info.
	const region = mem.VAddr(0x2000_0000)
	if _, err := p.AS.Map(region, 4, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	p.AS.WriteU64(region, 7777)
	infoAddr := region + 64
	p.AS.WriteU64(infoAddr, 1234)

	np, err := p.PreserveExec(ExecSpec{
		InfoAddr: infoAddr,
		Ranges:   []linker.Range{{Start: region, Len: 4 * mem.PageSize}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Dead() {
		t.Fatal("old process not dead after preserve_exec")
	}
	if np.AS.ReadU64(region) != 7777 || np.AS.ReadU64(infoAddr) != 1234 {
		t.Fatal("preserved content lost")
	}
	h := np.Handoff()
	if h == nil || h.InfoAddr != infoAddr || h.MovedPages != 4 {
		t.Fatalf("handoff wrong: %+v", h)
	}
	// ASLR base reused (§3.3).
	if np.AS.ASLRBase != p.AS.ASLRBase {
		t.Fatal("ASLR base re-randomized across PHOENIX restart")
	}
	// Image reloaded into the gaps.
	if v := np.AS.ReadU8(np.Image.Vars["counter"].Addr); v != 42 {
		t.Fatal("image not reloaded in successor")
	}
}

func TestPreserveExecWithSection(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(testImage())
	pools := p.Image.Vars["pools"]
	p.AS.WriteU64(pools.Addr, 99)
	np, err := p.PreserveExec(ExecSpec{WithSection: true})
	if err != nil {
		t.Fatal(err)
	}
	if np.AS.ReadU64(pools.Addr) != 99 {
		t.Fatal(".phx.data static not preserved with WithSection")
	}
}

func TestPreserveExecPartialPages(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	const region = mem.VAddr(0x2000_0000)
	if _, err := p.AS.Map(region, 4, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	// Preserve an unaligned byte range spanning partial head/tail pages.
	start := region + 100
	p.AS.WriteU64(start, 31337)
	tail := region + 3*mem.PageSize + 8
	p.AS.WriteU64(tail, 73331)
	np, err := p.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: start, Len: int(tail - start + 8)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if np.AS.ReadU64(start) != 31337 || np.AS.ReadU64(tail) != 73331 {
		t.Fatal("partial-page preserved content lost")
	}
	h := np.Handoff()
	if h.CopiedPages != 2 || h.MovedPages != 2 {
		t.Fatalf("partial split wrong: moved=%d copied=%d, want 2/2", h.MovedPages, h.CopiedPages)
	}
}

func TestPreserveExecRejectsStrayInfo(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	if _, err := p.PreserveExec(ExecSpec{InfoAddr: 0x9999_0000}); err == nil {
		t.Fatal("info outside preserved ranges accepted")
	}
}

func TestPreserveExecOnDead(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	p.Kill()
	if _, err := p.PreserveExec(ExecSpec{}); err == nil {
		t.Fatal("preserve_exec on dead process succeeded")
	}
}

func TestExecFallback(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(testImage())
	np, err := p.Exec("unsafe region")
	if err != nil {
		t.Fatal(err)
	}
	if np.Handoff() == nil || np.Handoff().FallbackReason != "unsafe region" {
		t.Fatal("fallback reason not carried")
	}
	if np.Handoff().MovedPages != 0 {
		t.Fatal("plain exec moved pages")
	}
	// Plain restart re-randomizes ASLR.
	if np.AS.ASLRBase == p.AS.ASLRBase {
		t.Fatal("plain exec reused ASLR base (expected re-randomization)")
	}
}

func TestRunCatchesFaults(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	ci := p.Run(func() { p.AS.ReadU64(0xdead000) })
	if ci == nil || ci.Sig != SIGSEGV || ci.Addr != 0xdead000 {
		t.Fatalf("fault not converted: %+v", ci)
	}
	ci = p.Run(func() { panic(&Crash{Sig: SIGABRT, Reason: "assert"}) })
	if ci == nil || ci.Sig != SIGABRT {
		t.Fatalf("crash not converted: %+v", ci)
	}
	if ci := p.Run(func() {}); ci != nil {
		t.Fatalf("clean run returned crash %+v", ci)
	}
}

func TestRunPropagatesForeignPanics(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	p.Run(func() { panic("simulator bug") })
}

func TestSignalDelivery(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	var got *CrashInfo
	p.OnSignal(SIGSEGV, func(ci *CrashInfo) { got = ci })
	handled := p.Deliver(&CrashInfo{Sig: SIGSEGV, Addr: 0x42})
	if !handled || got == nil || got.Addr != 0x42 {
		t.Fatal("handler not invoked")
	}
	if p.Deliver(&CrashInfo{Sig: SIGABRT}) {
		t.Fatal("unregistered signal reported handled")
	}
	if p.Deliver(&CrashInfo{Sig: SIGKILL}) {
		t.Fatal("SIGKILL ran a handler")
	}
	if !p.Dead() {
		t.Fatal("SIGKILL did not kill")
	}
}

func TestWatchdog(t *testing.T) {
	m := NewMachine(1)
	w := m.NewWatchdog(5 * time.Second)
	if w.Expired() {
		t.Fatal("fresh watchdog expired")
	}
	m.Clock.Advance(3 * time.Second)
	w.Pet()
	m.Clock.Advance(4 * time.Second)
	if w.Expired() {
		t.Fatal("petted watchdog expired early")
	}
	m.Clock.Advance(time.Second)
	if !w.Expired() {
		t.Fatal("watchdog did not expire")
	}
	if w.Deadline() != 3*time.Second+5*time.Second {
		t.Fatalf("Deadline = %v", w.Deadline())
	}
}

func TestPreserveExecCostScalesWithPages(t *testing.T) {
	m := NewMachine(1)
	p, _ := m.Spawn(nil)
	const region = mem.VAddr(0x2000_0000)
	const pages = 1024
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	before := m.Clock.Now()
	if _, err := p.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: pages * mem.PageSize}},
	}); err != nil {
		t.Fatal(err)
	}
	got := m.Clock.Now() - before
	// Untouched pages are non-resident: the walk pays the per-page dirty
	// scan and the PTE moves, but hashes nothing (zero-page sums are O(1)).
	want := m.Model.PreserveExecDelta(pages, 0, 0, pages)
	if got != want {
		t.Fatalf("preserve_exec charged %v, want %v", got, want)
	}

	// Resident pages are hashed at stage and again at verify on a first
	// preserve (no cache yet), so the charge gains 2 hashes per written page.
	m2 := NewMachine(1)
	p2, _ := m2.Spawn(nil)
	if _, err := p2.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	const written = 32
	for i := 0; i < written; i++ {
		p2.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	before = m2.Clock.Now()
	if _, err := p2.PreserveExec(ExecSpec{
		Ranges: []linker.Range{{Start: region, Len: pages * mem.PageSize}},
	}); err != nil {
		t.Fatal(err)
	}
	got = m2.Clock.Now() - before
	want = m2.Model.PreserveExecDelta(pages, 0, 2*written, pages)
	if got != want {
		t.Fatalf("preserve_exec with %d resident pages charged %v, want %v", written, got, want)
	}
}
