package kernel

import (
	"fmt"
	"sort"
	"time"

	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// Migration is a live cross-machine transfer of a process's preserved ranges
// — the mechanism under shard rebalancing. It rides the same page-level
// machinery as preserve_exec instead of serializing application contents:
// the destination receives the preserved pages at their original virtual
// addresses (same ASLR slide) under a Handoff, so the application recovers
// on the destination exactly as it would after a PHOENIX restart.
//
// The transfer runs in delta rounds while the source keeps serving. Each
// round scans the preserved pages' write-generation stamps (mem.PageGen, a
// cheap per-page counter check), re-hashes only stamp-changed pages, and
// ships only pages whose checksum actually changed since their last ship.
// Because writes re-stamp pages, successive rounds converge to the write
// rate: round k ships only what the application wrote during round k-1. The
// cutover then performs one final round — small, because the orchestrator
// has frozen the shard's traffic — builds the destination process, and kills
// the source, so the preserved state never has two live owners. Cutover cost
// therefore scales with the final dirty delta (hash + ship terms), not with
// the shard size (only the 5ns/page stamp scan is O(pages)).
//
// The preserved range set is re-resolved from the application's restart plan
// at every round, so heap growth during the migration (new arenas, grown
// mappings) enters the page set automatically instead of being silently
// dropped at cutover.
type Migration struct {
	src     *Process
	dst     *Machine
	resolve func() (ExecSpec, error)

	// gens records each page's write-generation stamp as of its last hash;
	// an unchanged stamp proves unchanged bytes, skipping the hash entirely.
	gens map[mem.PageNum]uint64
	// sums records each page's checksum as of its last ship; an unchanged
	// sum after a re-hash (same bytes rewritten, or a discarded rewind
	// domain) skips the ship.
	sums map[mem.PageNum]uint64
	// data buffers the shipped page images awaiting install at cutover. A
	// missing entry for a tracked page means it reads as zeros.
	data map[mem.PageNum][]byte

	rounds  int
	shipped int
	done    bool
	aborted bool
}

// RoundStats accounts one migration round (or the cutover's final round).
type RoundStats struct {
	// Scanned is the preserved page count — every round pays a stamp scan
	// over all of it.
	Scanned int
	// Hashed counts pages whose stamp changed and were re-checksummed.
	Hashed int
	// Shipped counts pages whose content changed and were re-buffered for
	// the destination.
	Shipped int
	// Cost is the simulated time charged to the source machine's clock.
	Cost time.Duration
	// InstallCost is the simulated time charged to the destination machine's
	// clock (cutover only: successor construction and image load).
	InstallCost time.Duration
}

// StartMigration begins a live migration of src's preserved ranges to a
// fresh process on dst. resolve returns the current preserve spec (the same
// one a PHOENIX restart would use); it is re-invoked every round so the
// tracked page set follows the application's live heap. No pages move until
// the first DeltaRound.
func StartMigration(src *Process, dst *Machine, resolve func() (ExecSpec, error)) (*Migration, error) {
	if src == nil || src.dead {
		return nil, fmt.Errorf("kernel: migration: source process is dead")
	}
	if dst == nil {
		return nil, fmt.Errorf("kernel: migration: nil destination machine")
	}
	mg := &Migration{
		src:     src,
		dst:     dst,
		resolve: resolve,
		gens:    make(map[mem.PageNum]uint64),
		sums:    make(map[mem.PageNum]uint64),
		data:    make(map[mem.PageNum][]byte),
	}
	// Resolve once up front so a misconfigured spec fails at start, not
	// rounds later.
	if _, _, err := mg.pageSet(); err != nil {
		return nil, err
	}
	return mg, nil
}

// Rounds returns the number of completed delta rounds (the cutover's final
// round included).
func (mg *Migration) Rounds() int { return mg.rounds }

// ShippedPages returns the cumulative number of page ships across all
// rounds — the migration's total transfer volume.
func (mg *Migration) ShippedPages() int { return mg.shipped }

// Done reports whether the migration completed its cutover.
func (mg *Migration) Done() bool { return mg.done }

// Aborted reports whether the migration was abandoned.
func (mg *Migration) Aborted() bool { return mg.aborted }

// Abort abandons the migration, discarding the buffered pages. The source
// process is untouched — aborting a migration is always safe, which is what
// lets the orchestrator bail out when a kill or a PHOENIX restart hits the
// source mid-transfer (a restart invalidates the buffered baseline: the
// successor is a different process).
func (mg *Migration) Abort() {
	mg.aborted = true
	mg.data = nil
}

func (mg *Migration) usable() error {
	switch {
	case mg.done:
		return fmt.Errorf("kernel: migration: already cut over")
	case mg.aborted:
		return fmt.Errorf("kernel: migration: aborted")
	case mg.src.dead:
		return fmt.Errorf("kernel: migration: source process died")
	}
	return nil
}

// pageSet resolves the current spec and expands it to the sorted set of
// whole pages covering every preserved range (migration ships whole pages;
// the destination mapping geometry mirrors the source's, so the extra bytes
// of a partially covered page belong to the same mapping either way).
func (mg *Migration) pageSet() (ExecSpec, []mem.PageNum, error) {
	spec, err := mg.resolve()
	if err != nil {
		return ExecSpec{}, nil, fmt.Errorf("kernel: migration: resolve spec: %w", err)
	}
	ranges := append([]linker.Range(nil), spec.Ranges...)
	if spec.WithSection && mg.src.Image != nil {
		ranges = append(ranges, mg.src.Image.PreservedRanges()...)
	}
	spec.Ranges = ranges
	spec.WithSection = false
	if len(ranges) == 0 {
		return ExecSpec{}, nil, fmt.Errorf("kernel: migration: empty preserved range set")
	}
	seen := make(map[mem.PageNum]bool)
	var pages []mem.PageNum
	for _, r := range ranges {
		if r.Len <= 0 {
			return ExecSpec{}, nil, fmt.Errorf("kernel: migration: non-positive range length at %#x", uint64(r.Start))
		}
		// Validate coverage the way MovePages does: every page of the range
		// must be mapped in the source.
		cur := mem.PageBase(r.Start)
		for cur < r.End() {
			m := mg.src.AS.FindMapping(cur)
			if m == nil {
				return ExecSpec{}, nil, fmt.Errorf("kernel: migration: unmapped address %#x", uint64(cur))
			}
			cur = m.End()
		}
		for p := mem.PageOf(r.Start); p <= mem.PageOf(r.End()-1); p++ {
			if !seen[p] {
				seen[p] = true
				pages = append(pages, p)
			}
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return spec, pages, nil
}

// shipDelta runs one copy round over pages: stamp scan, re-hash of
// stamp-changed pages, re-buffer of checksum-changed pages.
//
// The scan/hash/read stage fans out over the preserve worker pool — workers
// only read the source space and the round's baseline maps and write staged
// results at owned indices — and the merge then applies them serially in
// page order, so the round's baseline updates and stats are byte-identical
// to the serial walk for every pool width.
func (mg *Migration) shipDelta(pages []mem.PageNum) RoundStats {
	as := mg.src.AS
	st := RoundStats{Scanned: len(pages)}
	type staged struct {
		hashed   bool
		ship     bool
		gen      uint64
		sum      uint64
		resident bool
		data     []byte
	}
	res := make([]staged, len(pages))
	parallelRanges(len(pages), mg.src.Machine.preserveWorkers(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pages[i]
			g := as.PageGen(p)
			if got, ok := mg.gens[p]; ok && got == g {
				continue
			}
			res[i].hashed = true
			res[i].gen = g
			res[i].sum = as.PageChecksum(p)
			if s, ok := mg.sums[p]; ok && s == res[i].sum {
				continue // re-hashed, content unchanged: record the stamp only
			}
			res[i].ship = true
			if res[i].resident = as.PageResident(p); res[i].resident {
				res[i].data = as.ReadBytes(mem.VAddr(p)<<mem.PageShift, mem.PageSize)
			}
		}
	})
	for i, r := range res {
		if !r.hashed {
			continue
		}
		st.Hashed++
		mg.gens[pages[i]] = r.gen
		if !r.ship {
			continue
		}
		mg.sums[pages[i]] = r.sum
		if r.resident {
			mg.data[pages[i]] = r.data
		} else {
			delete(mg.data, pages[i]) // reads as zeros on both sides
		}
		st.Shipped++
	}
	mg.rounds++
	mg.shipped += st.Shipped
	return st
}

// DeltaRound performs one background copy round while the source keeps
// serving, charging the source machine's clock per the cost model. The
// returned stats' Shipped count is the convergence signal: the orchestrator
// keeps running rounds until it drops below its cutover threshold.
func (mg *Migration) DeltaRound() (RoundStats, error) {
	if err := mg.usable(); err != nil {
		return RoundStats{}, err
	}
	_, pages, err := mg.pageSet()
	if err != nil {
		return RoundStats{}, err
	}
	st := mg.shipDelta(pages)
	st.Cost = mg.src.Machine.Model.MigrateRound(st.Scanned, st.Hashed, st.Shipped)
	mg.src.Machine.Clock.Advance(st.Cost)
	return st, nil
}

// Cutover completes the migration: one final delta round (the orchestrator
// must have frozen the shard's traffic, so the delta is the last in-flight
// writes, not the write rate), then the destination process is built — same
// image, same link map, same ASLR slide, source mapping geometry mirrored,
// buffered pages installed, fresh image loaded into the gaps — and handed a
// preserve Handoff, so the application on the destination boots down its
// normal PHOENIX recovery path. The source process is killed on success:
// preserved state never has two live owners.
func (mg *Migration) Cutover() (*Process, RoundStats, error) {
	if err := mg.usable(); err != nil {
		return nil, RoundStats{}, err
	}
	spec, pages, err := mg.pageSet()
	if err != nil {
		return nil, RoundStats{}, err
	}
	infoOK := false
	for _, p := range pages {
		if p == mem.PageOf(spec.InfoAddr) {
			infoOK = true
			break
		}
	}
	if !infoOK {
		return nil, RoundStats{}, fmt.Errorf("kernel: migration: info block %#x outside preserved pages", uint64(spec.InfoAddr))
	}
	st := mg.shipDelta(pages)

	src, dst := mg.src, mg.dst
	np := &Process{
		PID:      dst.allocPID(),
		Machine:  dst,
		AS:       mem.NewAddressSpace(),
		Image:    src.Image,
		LinkMap:  src.LinkMap, // preserved via the private link_map syscall
		handlers: make(map[Signal]func(*CrashInfo)),
	}
	// Same slide as the source: the preserved pointers stay valid (§3.3).
	np.AS.ASLRBase = src.AS.ASLRBase

	// Mirror the source's mapping geometry over the preserved pages, then
	// install the buffered images. Non-resident pages stay unmaterialized —
	// they read as zeros on both sides.
	for _, seg := range clipMappings(src.AS, pages) {
		if _, err := np.AS.Map(seg.Start, seg.Pages, seg.Kind, seg.Name); err != nil {
			return nil, RoundStats{}, fmt.Errorf("kernel: migration: map %s: %w", seg.Name, err)
		}
	}
	for _, p := range pages {
		if d, ok := mg.data[p]; ok {
			np.AS.WriteAt(mem.VAddr(p)<<mem.PageShift, d)
		}
	}
	// Load the fresh image into the gaps; the dynamic linker skips the
	// installed preserved ranges, exactly as after a preserve_exec.
	if src.Image != nil {
		if _, err := src.Image.Load(np.AS); err != nil {
			return nil, RoundStats{}, fmt.Errorf("kernel: migration: image load: %w", err)
		}
	}
	np.preserved = &Handoff{
		InfoAddr:   spec.InfoAddr,
		Ranges:     spec.Ranges,
		MovedPages: len(pages),
	}

	st.Cost = src.Machine.Model.MigrateCutover(st.Scanned, st.Hashed, st.Shipped)
	src.Machine.Clock.Advance(st.Cost)
	st.InstallCost = dst.Model.Exec()
	dst.Clock.Advance(st.InstallCost)

	src.dead = true
	mg.done = true
	mg.data = nil
	return np, st, nil
}

// clipMappings returns the source mappings clipped to the runs of
// consecutive pages in the (sorted) page set — the destination's mapping
// geometry.
type mapSegment struct {
	Start mem.VAddr
	Pages int
	Kind  mem.Kind
	Name  string
}

func clipMappings(as *mem.AddressSpace, pages []mem.PageNum) []mapSegment {
	var segs []mapSegment
	for i := 0; i < len(pages); {
		j := i
		for j+1 < len(pages) && pages[j+1] == pages[j]+1 {
			j++
		}
		lo := mem.VAddr(pages[i]) << mem.PageShift
		hi := mem.VAddr(pages[j]+1) << mem.PageShift
		cur := lo
		for cur < hi {
			m := as.FindMapping(cur)
			end := m.End()
			if end > hi {
				end = hi
			}
			segs = append(segs, mapSegment{
				Start: cur,
				Pages: int((end - cur) / mem.PageSize),
				Kind:  m.Kind,
				Name:  m.Name,
			})
			cur = end
		}
		i = j + 1
	}
	return segs
}
