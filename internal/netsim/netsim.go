// Package netsim is a deterministic message-passing network on the simulated
// clock. Nodes register handlers; Send schedules delivery after a per-link
// latency drawn from a seeded RNG, optionally dropping, duplicating, or
// delaying the message. Partitions cut delivery between node groups — both
// for new sends and for messages already in flight when the partition forms.
//
// Everything is driven by simclock: no goroutines, no wall time, no map
// iteration in the delivery path, so a run with a given seed and send
// sequence produces byte-identical delivery order. The faultinject sites
// (netsim.link.*) let campaigns strike individual messages the same way they
// strike preserve_exec operations.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/simclock"
)

// NodeID names a simulated host.
type NodeID string

// Message is one datagram in flight.
type Message struct {
	From, To NodeID
	// Payload is opaque to the network.
	Payload any
	// Seq is the network-global send sequence number (diagnostics and
	// deterministic tie-breaks).
	Seq uint64
}

// Handler receives delivered messages.
type Handler func(Message)

// LinkConfig shapes one directed link.
type LinkConfig struct {
	// Latency is the base one-way delay.
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) component per delivery.
	Jitter time.Duration
	// DropProb drops a message with this probability (0..1).
	DropProb float64
	// DupProb delivers a message twice with this probability (0..1).
	DupProb float64
}

func (lc *LinkConfig) fill() {
	if lc.Latency == 0 {
		lc.Latency = 200 * time.Microsecond
	}
}

// Injection sites: campaigns strike the next message(s) crossing any link.
const (
	// SiteLinkDrop drops the Nth message offered to the network (arm with
	// ArmAfter to choose N).
	SiteLinkDrop = "netsim.link.drop"
	// SiteLinkDup duplicates the Nth message.
	SiteLinkDup = "netsim.link.dup"
	// SiteLinkDelay adds a 10× base-latency penalty to the Nth message.
	SiteLinkDelay = "netsim.link.delay"
)

// Sites lists the network injection points.
func Sites() []faultinject.Site {
	return []faultinject.Site{
		{ID: SiteLinkDrop, Func: "Network.Send", Kind: faultinject.KindOp},
		{ID: SiteLinkDup, Func: "Network.Send", Kind: faultinject.KindOp},
		{ID: SiteLinkDelay, Func: "Network.Send", Kind: faultinject.KindOp},
	}
}

// RegisterSites declares the network sites on inj, skipping duplicates (a
// campaign injector may be shared across networks and harnesses).
func RegisterSites(inj *faultinject.Injector) {
	for _, s := range Sites() {
		if _, armed := inj.ArmedAt(s.ID); armed {
			continue
		}
		registered := false
		for _, have := range inj.Sites() {
			if have.ID == s.ID {
				registered = true
				break
			}
		}
		if !registered {
			inj.Register(s)
		}
	}
}

// Stats counts network-level outcomes.
type Stats struct {
	Sent       int
	Delivered  int
	Dropped    int // random link loss
	Duplicated int
	Delayed    int // injected delay penalties
	// PartitionDrops counts messages cut by a partition — at send time or
	// while in flight when the partition formed.
	PartitionDrops int
	// InjectedDrops counts messages dropped by an armed netsim.link.drop.
	InjectedDrops int
}

// Network is the simulated fabric.
type Network struct {
	clk *simclock.Clock
	rng *rand.Rand
	inj *faultinject.Injector

	def      LinkConfig
	links    map[[2]NodeID]LinkConfig
	handlers map[NodeID]Handler

	// group assigns each node to a partition group; nodes in different
	// groups cannot reach each other. Empty map = fully connected.
	group map[NodeID]int

	seq  uint64
	Stat Stats
}

// New builds a network on clk. def shapes every link without an override;
// seed drives all randomness; inj may be nil (no injection).
func New(clk *simclock.Clock, def LinkConfig, seed int64, inj *faultinject.Injector) *Network {
	def.fill()
	if inj == nil {
		inj = faultinject.New()
	}
	RegisterSites(inj)
	return &Network{
		clk:      clk,
		rng:      rand.New(rand.NewSource(seed)),
		inj:      inj,
		def:      def,
		links:    make(map[[2]NodeID]LinkConfig),
		handlers: make(map[NodeID]Handler),
		group:    make(map[NodeID]int),
	}
}

// Register binds a delivery handler to a node. Re-registering replaces the
// handler (a restarted node re-binds).
func (n *Network) Register(id NodeID, h Handler) { n.handlers[id] = h }

// SetLink overrides the shape of the directed link from → to.
func (n *Network) SetLink(from, to NodeID, lc LinkConfig) {
	lc.fill()
	n.links[[2]NodeID{from, to}] = lc
}

func (n *Network) link(from, to NodeID) LinkConfig {
	if lc, ok := n.links[[2]NodeID{from, to}]; ok {
		return lc
	}
	return n.def
}

// Partition splits the network into the given groups: nodes in different
// groups (or in no group) cannot exchange messages until Heal. In-flight
// messages crossing a new partition boundary are dropped at delivery time —
// the wire was cut while they were on it.
func (n *Network) Partition(groups ...[]NodeID) {
	n.group = make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			n.group[id] = gi + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() { n.group = make(map[NodeID]int) }

// Reachable reports whether a message from a would currently reach b.
func (n *Network) Reachable(a, b NodeID) bool {
	if len(n.group) == 0 {
		return true
	}
	ga, gb := n.group[a], n.group[b]
	return ga != 0 && ga == gb
}

// Send offers one message to the fabric. Delivery (if any) happens via the
// destination's handler when the clock reaches the scheduled time. Sending
// to a node with no handler silently drops (the host is down).
func (n *Network) Send(from, to NodeID, payload any) {
	n.seq++
	n.Stat.Sent++
	msg := Message{From: from, To: to, Payload: payload, Seq: n.seq}

	if !n.Reachable(from, to) {
		n.Stat.PartitionDrops++
		return
	}
	if n.inj.Fail(SiteLinkDrop) {
		n.Stat.InjectedDrops++
		return
	}

	lc := n.link(from, to)
	copies := 1
	if n.inj.Fail(SiteLinkDup) {
		copies = 2
		n.Stat.Duplicated++
	} else if lc.DupProb > 0 && n.rng.Float64() < lc.DupProb {
		copies = 2
		n.Stat.Duplicated++
	}
	if lc.DropProb > 0 && n.rng.Float64() < lc.DropProb {
		n.Stat.Dropped++
		return
	}

	var penalty time.Duration
	if n.inj.Fail(SiteLinkDelay) {
		penalty = 10 * lc.Latency
		n.Stat.Delayed++
	}
	for i := 0; i < copies; i++ {
		d := lc.Latency + penalty
		if lc.Jitter > 0 {
			d += time.Duration(n.rng.Int63n(int64(lc.Jitter)))
		}
		n.clk.AfterFunc(d, func() { n.deliver(msg) })
	}
}

func (n *Network) deliver(msg Message) {
	// The wire may have been cut after the message left.
	if !n.Reachable(msg.From, msg.To) {
		n.Stat.PartitionDrops++
		return
	}
	h, ok := n.handlers[msg.To]
	if !ok {
		n.Stat.Dropped++
		return
	}
	n.Stat.Delivered++
	h(msg)
}

// Now exposes the fabric clock.
func (n *Network) Now() time.Duration { return n.clk.Now() }

func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d dup=%d delayed=%d partition-drops=%d injected-drops=%d",
		s.Sent, s.Delivered, s.Dropped, s.Duplicated, s.Delayed, s.PartitionDrops, s.InjectedDrops)
}
