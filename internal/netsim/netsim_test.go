package netsim

import (
	"fmt"
	"testing"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/simclock"
)

func collect(net *Network, id NodeID) *[]string {
	var got []string
	net.Register(id, func(m Message) {
		got = append(got, fmt.Sprintf("%d:%s->%s:%v@%v", m.Seq, m.From, m.To, m.Payload, net.Now()))
	})
	return &got
}

func TestDeliveryAfterLatency(t *testing.T) {
	clk := simclock.New()
	net := New(clk, LinkConfig{Latency: time.Millisecond}, 1, nil)
	got := collect(net, "b")

	net.Send("a", "b", "hello")
	if len(*got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	clk.Advance(time.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("got %v", *got)
	}
	if net.Stat.Sent != 1 || net.Stat.Delivered != 1 {
		t.Fatalf("stats %+v", net.Stat)
	}
}

func TestSeedReproducible(t *testing.T) {
	run := func(seed int64) ([]string, Stats) {
		clk := simclock.New()
		net := New(clk, LinkConfig{
			Latency: time.Millisecond, Jitter: 500 * time.Microsecond,
			DropProb: 0.2, DupProb: 0.1,
		}, seed, nil)
		got := collect(net, "b")
		for i := 0; i < 200; i++ {
			net.Send("a", "b", i)
			clk.Advance(100 * time.Microsecond)
		}
		clk.Advance(time.Second)
		return *got, net.Stat
	}
	a1, s1 := run(7)
	a2, s2 := run(7)
	if len(a1) != len(a2) || s1 != s2 {
		t.Fatalf("same seed diverged: %d vs %d deliveries, %+v vs %+v", len(a1), len(a2), s1, s2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("delivery %d differs: %s vs %s", i, a1[i], a2[i])
		}
	}
	b, sb := run(8)
	if len(a1) == len(b) && s1 == sb {
		same := true
		for i := range a1 {
			if a1[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("distinct seeds produced identical delivery traces")
		}
	}
	// Loss actually happened at 20% drop probability.
	if s1.Dropped == 0 {
		t.Fatalf("no drops at DropProb=0.2: %+v", s1)
	}
	if s1.Duplicated == 0 {
		t.Fatalf("no dups at DupProb=0.1: %+v", s1)
	}
}

func TestPartitionCutsBothNewAndInFlight(t *testing.T) {
	clk := simclock.New()
	net := New(clk, LinkConfig{Latency: time.Millisecond}, 1, nil)
	got := collect(net, "b")

	// In flight when the partition forms: must be cut.
	net.Send("a", "b", "inflight")
	net.Partition([]NodeID{"a"}, []NodeID{"b"})
	if net.Reachable("a", "b") {
		t.Fatal("partitioned nodes reachable")
	}
	// New send across the cut: dropped at send time.
	net.Send("a", "b", "blocked")
	clk.Advance(10 * time.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("delivered across partition: %v", *got)
	}
	if net.Stat.PartitionDrops != 2 {
		t.Fatalf("stats %+v", net.Stat)
	}

	// Same-side traffic still flows.
	net.Partition([]NodeID{"a", "b"})
	net.Send("a", "b", "sameside")
	clk.Advance(time.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("same-side traffic blocked: %v", *got)
	}

	// Heal restores the cut pair.
	net.Partition([]NodeID{"a"}, []NodeID{"b"})
	net.Heal()
	net.Send("a", "b", "healed")
	clk.Advance(time.Millisecond)
	if len(*got) != 2 {
		t.Fatalf("heal did not restore delivery: %v", *got)
	}
}

func TestInjectedDropDupDelay(t *testing.T) {
	clk := simclock.New()
	inj := faultinject.New()
	net := New(clk, LinkConfig{Latency: time.Millisecond}, 1, inj)
	got := collect(net, "b")
	inj.Enable()

	inj.Arm(SiteLinkDrop, faultinject.OpFailure)
	net.Send("a", "b", "striken")
	clk.Advance(time.Second)
	if len(*got) != 0 || net.Stat.InjectedDrops != 1 {
		t.Fatalf("injected drop missed: %v, %+v", *got, net.Stat)
	}

	inj.Arm(SiteLinkDup, faultinject.OpFailure)
	net.Send("a", "b", "twice")
	clk.Advance(time.Second)
	if len(*got) != 2 || net.Stat.Duplicated != 1 {
		t.Fatalf("injected dup missed: %v, %+v", *got, net.Stat)
	}

	inj.Arm(SiteLinkDelay, faultinject.OpFailure)
	net.Send("a", "b", "slow")
	clk.Advance(time.Millisecond)
	if len(*got) != 2 {
		t.Fatal("delayed message arrived at base latency")
	}
	clk.Advance(10 * time.Millisecond)
	if len(*got) != 3 || net.Stat.Delayed != 1 {
		t.Fatalf("injected delay missed: %v, %+v", *got, net.Stat)
	}
}

func TestUnregisteredDestinationDrops(t *testing.T) {
	clk := simclock.New()
	net := New(clk, LinkConfig{}, 1, nil)
	net.Send("a", "ghost", "lost")
	clk.Advance(time.Second)
	if net.Stat.Delivered != 0 || net.Stat.Dropped != 1 {
		t.Fatalf("stats %+v", net.Stat)
	}
}

func TestPerLinkOverride(t *testing.T) {
	clk := simclock.New()
	net := New(clk, LinkConfig{Latency: time.Millisecond}, 1, nil)
	got := collect(net, "b")
	net.SetLink("a", "b", LinkConfig{Latency: 5 * time.Millisecond})

	net.Send("a", "b", "slowlink")
	clk.Advance(time.Millisecond)
	if len(*got) != 0 {
		t.Fatal("override ignored: delivered at default latency")
	}
	clk.Advance(4 * time.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("not delivered at override latency: %v", *got)
	}
}

func TestRegisterSitesSharedInjector(t *testing.T) {
	inj := faultinject.New()
	RegisterSites(inj)
	RegisterSites(inj) // second call must not panic on duplicates
	clk := simclock.New()
	_ = New(clk, LinkConfig{}, 1, inj) // nor construction with a pre-registered injector
}

// BenchmarkSendDeliver measures one send-advance-deliver round trip through
// the fabric, the hot path of every cluster run.
func BenchmarkSendDeliver(b *testing.B) {
	clk := simclock.New()
	net := New(clk, LinkConfig{Latency: 100 * time.Microsecond, Jitter: 50 * time.Microsecond}, 1, nil)
	delivered := 0
	net.Register("b", func(Message) { delivered++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send("a", "b", i)
		clk.Advance(200 * time.Microsecond)
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
