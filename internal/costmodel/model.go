// Package costmodel centralises the calibrated cost constants that drive the
// simulated clock.
//
// The constants are derived from figures the paper reports on its testbed
// (Intel Xeon Silver 4114, 480 GB SATA SSD):
//
//   - a baseline process restart takes 1.02 ms (§4.1);
//   - a PHOENIX restart with <4 MB preserved takes ~1.20 ms, i.e. ~180 µs of
//     fixed PHOENIX bookkeeping on top of the baseline;
//   - restart latency grows linearly with preserved pages: 32 GB ≈ 220.6 ms,
//     giving ~26 ns per 4 KiB page of PTE-move work;
//   - Redis serves a 90/10 YCSB workload at 53.3 K QPS (≈18.8 µs/request);
//   - loading a 6 GB RDB takes 53.5 s (≈112 MB/s effective unmarshal rate,
//     dominated by allocation + decoding, not raw SSD bandwidth);
//   - the SSD streams at ~500 MB/s for sequential page images (CRIU).
//
// Every component that advances the simulated clock imports its constants
// from here so experiments remain mutually consistent and auditable.
package costmodel

import "time"

// Page is the simulated page size in bytes. It matches x86-64 base pages.
const Page = 4096

// Model holds the tunable cost constants. A zero Model is not usable; obtain
// one from Default and adjust fields in tests when needed.
type Model struct {
	// ExecBase is the fixed cost of tearing down a process and exec'ing a
	// fresh image (fork+exec+dynamic linking), per the paper's 1.02 ms
	// baseline restart.
	ExecBase time.Duration

	// PhoenixFixed is the additional fixed cost of a PHOENIX-mode restart
	// (preserve_exec bookkeeping, link-map transfer, runtime re-init).
	PhoenixFixed time.Duration

	// PTEMove is the per-page cost of moving one page-table entry from the
	// old address space to the new one during preserve_exec.
	PTEMove time.Duration

	// PageCopy is the per-page cost of physically copying a page (used when
	// only part of a page is preserved, and by fork-based snapshots).
	PageCopy time.Duration

	// DiskSeqReadRate / DiskSeqWriteRate are sequential disk throughputs in
	// bytes per second.
	DiskSeqReadRate  int64
	DiskSeqWriteRate int64

	// DiskLatency is the fixed per-operation disk latency.
	DiskLatency time.Duration

	// UnmarshalPerByte is the per-byte cost of decoding a persistence image
	// back into live data structures (RDB-style load). It dominates builtin
	// recovery per §2.1.
	UnmarshalPerByte time.Duration

	// UnmarshalPerObject is the per-object allocation+insert cost during a
	// builtin load.
	UnmarshalPerObject time.Duration

	// MarshalPerByte is the per-byte cost of encoding data structures into a
	// persistence image (RDB save, checkpoint write).
	MarshalPerByte time.Duration

	// LogReplayPerRecord is the per-record cost of WAL replay (LevelDB).
	LogReplayPerRecord time.Duration

	// ForkPerPage is the per-page cost of forking a process image (used by
	// cross-check validation's background process and by fork snapshots).
	ForkPerPage time.Duration

	// ChecksumPerPage is the per-page cost of computing the FNV-1a integrity
	// checksum preserve_exec stamps into the preserve info block. At ~2.7 GB/s
	// for a byte-at-a-time FNV over a 4 KiB page this is the dominant preserve
	// cost once the preserved set grows, which is what incremental (delta)
	// checksumming amortises.
	ChecksumPerPage time.Duration

	// DirtyScanPerPage is the per-page cost of reading one soft-dirty bit
	// during the delta-preserve walk (a PTE read, no data touch). It is what
	// an incremental preserve still pays for every preserved page, dirty or
	// clean — the irreducible O(preserved) term, ~300x cheaper than hashing.
	DirtyScanPerPage time.Duration

	// FreezeFixed is the stop-the-world cost CRIU pays to freeze the process
	// before dumping, per snapshot.
	FreezeFixed time.Duration

	// RequestBase is the base CPU cost of parsing/dispatching one request in
	// a server app, before data-structure work.
	RequestBase time.Duration

	// MemOp is the cost of one simulated-memory data-structure step (a node
	// visit, a hash probe, a pointer chase).
	MemOp time.Duration

	// ByteTouch is the per-byte cost of reading or writing value payloads.
	ByteTouch time.Duration

	// GCSweepPerChunk is the per-chunk cost of the PHOENIX mark-and-sweep
	// cleanup pass after a restart.
	GCSweepPerChunk time.Duration

	// ComputePerUnit is the cost of one unit of computational work in the
	// batch apps (one boosting-tree node scan, one particle push).
	ComputePerUnit time.Duration

	// UnsafeMark is the cost of one unsafe-region state transition (the
	// counter update / state-stack maintenance the compiler instruments,
	// §3.5). Together with allocator tracking this is PHOENIX's runtime
	// overhead source (Table 8).
	UnsafeMark time.Duration

	// DomainBegin is the fixed cost of opening a per-request rewind domain:
	// arming the copy-on-write capture is O(1) — pre-images are taken lazily
	// at first touch, so entry pays no per-page term.
	DomainBegin time.Duration

	// DomainCoWPerPage is the per-page cost of the lazy pre-image capture a
	// rewind domain pays for each page the request writes (one page copy plus
	// undo-log bookkeeping). Charged when the domain closes, per touched page.
	DomainCoWPerPage time.Duration

	// DomainRestorePerPage is the additional per-page cost DiscardDomain pays
	// to write the captured pre-image back (a second page copy); a commit
	// drops the undo log without paying it.
	DomainRestorePerPage time.Duration

	// MicrorebootFixed is the fixed cost of a component microreboot:
	// quiescing the component, walking the dependency cascade, and swapping
	// its transient state — well below a process restart (no exec, no
	// preserve), well above a request rewind.
	MicrorebootFixed time.Duration

	// ComponentReinitPerUnit is the per-unit cost of rebuilding one unit of a
	// component's derived state during a microreboot (a dictionary entry
	// relinked, a WAL record replayed, a sample's prediction recomputed).
	ComponentReinitPerUnit time.Duration

	// MigrateRoundFixed is the per-round fixed cost of one shard-migration
	// copy round: snapshotting the dirty set, setting up the transfer, and
	// the control-plane round trip with the destination.
	MigrateRoundFixed time.Duration

	// MigratePerPage is the per-page cost of shipping one preserved page to
	// another machine during live shard migration (read + transfer + install;
	// the fabric's link latency is charged separately by netsim). It is paid
	// only for pages whose content actually changed since the previous round,
	// which is what makes migration cost track the write rate.
	MigratePerPage time.Duration

	// MigrateCutoverFixed is the fixed cost of the migration cutover: freezing
	// the shard's routing, the final ownership handshake, and unfreezing. The
	// cutover additionally pays MigratePerPage for the final dirty delta and
	// the dirty-scan/hash terms for detecting it — so the cutover window
	// scales with the final delta, never with the shard size.
	MigrateCutoverFixed time.Duration

	// SnapshotCommitFixed is the fixed cost of committing one MVCC snapshot
	// version: bumping the version sequence, freezing the mapping table, and
	// publishing the version pointer under the store lock.
	SnapshotCommitFixed time.Duration

	// SnapshotCopyPerPage is the per-page cost of freezing one page changed
	// since the previous version into the new snapshot (a page copy plus
	// version bookkeeping); unchanged pages are shared with the predecessor
	// and cost nothing, so commit cost tracks the write rate.
	SnapshotCopyPerPage time.Duration

	// ReaderSpawn is the per-reader fixed cost of standing up one concurrent
	// snapshot reader for a batch: opening the latest version (a refcount
	// under the store lock) plus scheduling.
	ReaderSpawn time.Duration

	// SnapshotReadCost is the mean cost of serving one read off an immutable
	// snapshot: cheaper than RequestBase service because there is no
	// dispatch through the writer path, no unsafe-region bracketing, and no
	// rewind-domain bookkeeping — just the lock-free structure walk.
	SnapshotReadCost time.Duration

	// PreserveWorkerSpawn is the per-worker fixed cost of the parallel
	// preserve path: forking one worker into the checksum/scan pool and
	// joining it at the deterministic merge barrier.
	PreserveWorkerSpawn time.Duration
}

// Default returns the calibrated model described in the package comment.
func Default() Model {
	return Model{
		ExecBase:           1020 * time.Microsecond,
		PhoenixFixed:       180 * time.Microsecond,
		PTEMove:            26 * time.Nanosecond,
		PageCopy:           400 * time.Nanosecond,
		DiskSeqReadRate:    500 << 20, // ~500 MiB/s
		DiskSeqWriteRate:   400 << 20, // ~400 MiB/s
		DiskLatency:        100 * time.Microsecond,
		UnmarshalPerByte:   9 * time.Nanosecond, // ~112 MB/s effective
		UnmarshalPerObject: 350 * time.Nanosecond,
		MarshalPerByte:     4 * time.Nanosecond,
		LogReplayPerRecord: 2 * time.Microsecond,
		ForkPerPage:        150 * time.Nanosecond,
		ChecksumPerPage:    1500 * time.Nanosecond,
		DirtyScanPerPage:   5 * time.Nanosecond,
		FreezeFixed:        3 * time.Millisecond,
		RequestBase:        12 * time.Microsecond,
		MemOp:              60 * time.Nanosecond,
		ByteTouch:          1 * time.Nanosecond,
		GCSweepPerChunk:    40 * time.Nanosecond,
		ComputePerUnit:     25 * time.Nanosecond,
		UnsafeMark:         120 * time.Nanosecond,

		DomainBegin:            300 * time.Nanosecond,
		DomainCoWPerPage:       450 * time.Nanosecond,
		DomainRestorePerPage:   420 * time.Nanosecond,
		MicrorebootFixed:       25 * time.Microsecond,
		ComponentReinitPerUnit: 800 * time.Nanosecond,

		MigrateRoundFixed:   8 * time.Microsecond,
		MigratePerPage:      900 * time.Nanosecond, // page read + wire + install at ~4.5 GB/s
		MigrateCutoverFixed: 20 * time.Microsecond,

		SnapshotCommitFixed: 2 * time.Microsecond,
		SnapshotCopyPerPage: 500 * time.Nanosecond, // page copy + version bookkeeping
		ReaderSpawn:         2 * time.Microsecond,
		SnapshotReadCost:    3 * time.Microsecond,
		PreserveWorkerSpawn: 5 * time.Microsecond,
	}
}

// DiskRead returns the modelled time to read n sequential bytes.
func (m Model) DiskRead(n int64) time.Duration {
	return m.DiskLatency + rateTime(n, m.DiskSeqReadRate)
}

// DiskWrite returns the modelled time to write n sequential bytes.
func (m Model) DiskWrite(n int64) time.Duration {
	return m.DiskLatency + rateTime(n, m.DiskSeqWriteRate)
}

// rateTime converts n bytes at rate bytes/second into a duration.
func rateTime(n, rate int64) time.Duration {
	if rate <= 0 {
		return 0
	}
	sec := float64(n) / float64(rate)
	return time.Duration(sec * float64(time.Second))
}

// PreserveExec returns the modelled duration of a PHOENIX preserve_exec with
// the given number of preserved and copied pages.
func (m Model) PreserveExec(movedPages, copiedPages int) time.Duration {
	return m.ExecBase + m.PhoenixFixed +
		time.Duration(movedPages)*m.PTEMove +
		time.Duration(copiedPages)*m.PageCopy
}

// Exec returns the modelled duration of a plain restart (no preservation).
func (m Model) Exec() time.Duration { return m.ExecBase }

// PreserveExecDelta returns the modelled duration of an incremental
// preserve_exec: the PTE moves and partial-page copies of PreserveExec, plus
// a soft-dirty scan over every preserved page (scannedPages) and fresh
// checksums only for the pages actually hashed (hashedPages — dirty or
// cache-miss pages). Clean cached pages contribute only the scan term, which
// is why commit latency scales with the write rate rather than the preserved
// set.
func (m Model) PreserveExecDelta(movedPages, copiedPages, hashedPages, scannedPages int) time.Duration {
	return m.PreserveExec(movedPages, copiedPages) +
		time.Duration(hashedPages)*m.ChecksumPerPage +
		time.Duration(scannedPages)*m.DirtyScanPerPage
}

// RewindCommit returns the modelled duration of closing a rewind domain and
// keeping its writes: the deferred CoW capture for every touched page, then
// dropping the undo log.
func (m Model) RewindCommit(touchedPages int) time.Duration {
	return time.Duration(touchedPages) * m.DomainCoWPerPage
}

// RewindDiscard returns the modelled duration of rolling a rewind domain
// back: the CoW capture plus the pre-image write-back, per touched page. This
// is the rewind rung's whole unavailability window — no exec, no preserve,
// no checksum walk.
func (m Model) RewindDiscard(touchedPages int) time.Duration {
	return time.Duration(touchedPages) * (m.DomainCoWPerPage + m.DomainRestorePerPage)
}

// Microreboot returns the modelled duration of microrebooting components
// whose reinitialisation rebuilds reinitUnits units of derived state across
// cascaded components.
func (m Model) Microreboot(components, reinitUnits int) time.Duration {
	return time.Duration(components)*m.MicrorebootFixed +
		time.Duration(reinitUnits)*m.ComponentReinitPerUnit
}

// MigrateRound returns the modelled duration of one live-migration copy
// round: a soft-dirty scan over every preserved page of the shard, a fresh
// hash for each candidate page (to detect content actually changed since the
// last round), and the transfer cost for the pages that were re-shipped.
func (m Model) MigrateRound(scannedPages, hashedPages, shippedPages int) time.Duration {
	return m.MigrateRoundFixed +
		time.Duration(scannedPages)*m.DirtyScanPerPage +
		time.Duration(hashedPages)*m.ChecksumPerPage +
		time.Duration(shippedPages)*m.MigratePerPage
}

// MigrateCutover returns the modelled duration of the migration cutover
// window: the fixed freeze/handshake cost plus one final delta round. Only
// the final delta's pages are hashed and shipped, so the window is a
// function of the write rate during the last round, not of the shard size.
func (m Model) MigrateCutover(scannedPages, hashedPages, shippedPages int) time.Duration {
	return m.MigrateCutoverFixed + m.MigrateRound(scannedPages, hashedPages, shippedPages)
}

// SnapshotCommit returns the modelled duration of committing one MVCC
// snapshot version with changedPages pages copied fresh (the rest shared
// with the predecessor version).
func (m Model) SnapshotCommit(changedPages int) time.Duration {
	return m.SnapshotCommitFixed + time.Duration(changedPages)*m.SnapshotCopyPerPage
}

// ConcurrentReadBatch returns the modelled duration of serving reads requests
// off an immutable snapshot with readers concurrent readers: each reader
// pays its spawn cost, and the batch completes when the most loaded reader
// finishes its ceil(reads/readers) share. This is the term that makes the
// serving tier scale with readers — the snapshot store has no writer lock on
// the read path.
func (m Model) ConcurrentReadBatch(reads, readers int) time.Duration {
	if readers < 1 {
		readers = 1
	}
	perReader := (reads + readers - 1) / readers
	return time.Duration(readers)*m.ReaderSpawn +
		time.Duration(perReader)*m.SnapshotReadCost
}

// PreserveExecDeltaParallel returns the modelled duration of an incremental
// preserve_exec whose checksum and dirty-scan walks are spread over a worker
// pool: the serial PTE-move/copy spine of PreserveExec, plus the hash and
// scan terms divided across workers (critical path = the most loaded
// worker), plus the per-worker spawn/join overhead. With workers == 1 it
// exceeds PreserveExecDelta by exactly one spawn, so the crossover where the
// pool pays for itself is visible in the trajectory.
func (m Model) PreserveExecDeltaParallel(movedPages, copiedPages, hashedPages, scannedPages, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	hashShare := (hashedPages + workers - 1) / workers
	scanShare := (scannedPages + workers - 1) / workers
	return m.PreserveExec(movedPages, copiedPages) +
		time.Duration(hashShare)*m.ChecksumPerPage +
		time.Duration(scanShare)*m.DirtyScanPerPage +
		time.Duration(workers)*m.PreserveWorkerSpawn
}

// ForkCoW returns the modelled duration of a copy-on-write fork over a region
// of totalPages of which dirtyPages must be duplicated eagerly: every page
// costs a PTE scan, and only the dirty ones pay the full fork copy. The
// cross-check validator uses this once dirty tracking lets it walk just the
// modified set.
func (m Model) ForkCoW(totalPages, dirtyPages int) time.Duration {
	return time.Duration(totalPages)*m.DirtyScanPerPage +
		time.Duration(dirtyPages)*m.ForkPerPage
}
