package costmodel

import (
	"testing"
	"time"
)

func TestDefaultSane(t *testing.T) {
	m := Default()
	if m.ExecBase <= 0 || m.PTEMove <= 0 || m.DiskSeqReadRate <= 0 {
		t.Fatalf("default model has zero fields: %+v", m)
	}
}

func TestPreserveExecShape(t *testing.T) {
	m := Default()
	// Figure 9 shape: below 4 MB the fixed cost dominates (~1.2 ms).
	small := m.PreserveExec(4<<20/Page, 0)
	if small < time.Millisecond || small > 2*time.Millisecond {
		t.Fatalf("4MB preserve_exec = %v, want ~1.2ms", small)
	}
	// 32 GB should land near the paper's 220 ms.
	big := m.PreserveExec(32<<30/Page, 0)
	if big < 150*time.Millisecond || big > 350*time.Millisecond {
		t.Fatalf("32GB preserve_exec = %v, want ~220ms", big)
	}
	// Monotone in pages.
	if m.PreserveExec(100, 0) >= m.PreserveExec(1000, 0) {
		t.Fatal("preserve_exec not monotone in moved pages")
	}
	// Copying is more expensive than moving.
	if m.PreserveExec(1000, 0) >= m.PreserveExec(0, 1000) {
		t.Fatal("page copy should cost more than PTE move")
	}
}

func TestExecBaseline(t *testing.T) {
	m := Default()
	if m.Exec() != m.ExecBase {
		t.Fatalf("Exec() = %v, want %v", m.Exec(), m.ExecBase)
	}
	if m.PreserveExec(0, 0) <= m.Exec() {
		t.Fatal("phoenix restart with zero pages should still cost more than plain exec")
	}
}

func TestDiskTimes(t *testing.T) {
	m := Default()
	r := m.DiskRead(500 << 20)
	if r < 900*time.Millisecond || r > 1200*time.Millisecond {
		t.Fatalf("500MB read = %v, want ~1s at 500MB/s", r)
	}
	if m.DiskWrite(0) != m.DiskLatency {
		t.Fatalf("zero-byte write should cost only latency, got %v", m.DiskWrite(0))
	}
	if rateTime(100, 0) != 0 {
		t.Fatal("rateTime with zero rate should be 0")
	}
}

func TestPreserveExecDeltaShape(t *testing.T) {
	m := Default()
	const pages = 10000 // ~40 MB preserved set

	full := m.PreserveExecDelta(pages, 0, pages, pages)
	delta1pct := m.PreserveExecDelta(pages, 0, pages/100, pages)
	if delta1pct*5 > full {
		t.Fatalf("1%% dirty delta preserve %v not ≥5x cheaper than full %v", delta1pct, full)
	}
	// A delta preserve never beats the work it actually does: both terms of
	// the incremental walk are additive on top of the plain move cost.
	if m.PreserveExecDelta(pages, 0, 0, pages) <= m.PreserveExec(pages, 0) {
		t.Fatal("delta preserve with zero hashed pages lost its dirty-scan term")
	}
	// Hashing everything plus the scan costs at least the full-walk hash.
	if full <= m.PreserveExec(pages, 0)+time.Duration(pages)*m.ChecksumPerPage {
		t.Fatal("full delta preserve dropped the scan term")
	}
	// Monotone in hashed pages.
	if m.PreserveExecDelta(pages, 0, 10, pages) >= m.PreserveExecDelta(pages, 0, 100, pages) {
		t.Fatal("delta preserve not monotone in hashed pages")
	}
	// The scan is far cheaper than the hash — otherwise incremental preserve
	// could not win.
	if m.DirtyScanPerPage*100 > m.ChecksumPerPage {
		t.Fatalf("dirty scan %v too close to checksum %v for deltas to pay off",
			m.DirtyScanPerPage, m.ChecksumPerPage)
	}
}

func TestForkCoWShape(t *testing.T) {
	m := Default()
	const pages = 10000
	eager := time.Duration(pages) * m.ForkPerPage
	cow := m.ForkCoW(pages, pages/100)
	if cow*5 > eager {
		t.Fatalf("CoW fork over 1%% dirty %v not ≥5x cheaper than eager fork %v", cow, eager)
	}
	// Fully dirty CoW costs more than eager fork (scan term on top).
	if m.ForkCoW(pages, pages) <= eager {
		t.Fatal("fully-dirty CoW fork should cost the eager fork plus the scan")
	}
	if m.ForkCoW(0, 0) != 0 {
		t.Fatal("empty CoW fork should be free")
	}
}

func TestUnmarshalDominatesLoad(t *testing.T) {
	// §2.1: loading a 6 GB RDB takes ~53.5 s, far more than raw disk read.
	m := Default()
	const rdb = 6 << 30
	load := m.DiskRead(rdb) + time.Duration(rdb)*m.UnmarshalPerByte
	if load < 40*time.Second || load > 80*time.Second {
		t.Fatalf("6GB builtin load = %v, want ~50-70s", load)
	}
	if disk := m.DiskRead(rdb); disk >= load/2 {
		t.Fatalf("disk read %v should not dominate load %v", disk, load)
	}
}
