// Package shard is the sharded serving fabric: a consistent-hash key ring
// over per-shard replica groups of recovery harnesses, fronted by a
// shard-aware router, driven by an open-loop client population over a
// netsim fabric.
//
// The piece that makes it more than "many clusters side by side" is live
// shard migration: moving a shard to another node transfers its preserved
// pages through the same PreserveExec/dirty-page machinery a PHOENIX
// restart uses (kernel.Migration), in background delta rounds that converge
// to the write rate, followed by a brief frozen cutover whose cost scales
// with the final dirty delta — not the shard size. Non-PHOENIX modes move
// the same shard by stop-and-copy (freeze first, ship everything), which is
// what the campaign's migration-window comparison measures.
//
// Determinism: every run is a pure function of its seed. All timing flows
// through one simclock; node machines are stopwatches whose serve and
// recovery costs are mirrored onto the fabric clock; arrivals come from a
// seeded open-loop process; reports marshal with fixed field order and
// sorted keys, so same-seed runs are byte-identical.
package shard

import (
	"fmt"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/netsim"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

const routerID = netsim.NodeID("router")
const feID = netsim.NodeID("fe")

func nodeID(i int) netsim.NodeID { return netsim.NodeID(fmt.Sprintf("node%d", i)) }

// crashVA is an unmapped address outside every app's layout; reading it is
// the synthetic kill vector (same as the cluster campaign's).
const crashVA = 0x2_0000_0000

// Profile shapes the client population and traffic window.
type Profile struct {
	// Proto is the request-stream template; the frontend clones it with a
	// run-derived seed.
	Proto workload.Generator
	// Warm pre-populates the dataset before traffic: each shard's replicas
	// receive exactly the warm requests whose keys the ring maps to that
	// shard.
	Warm []*workload.Request

	// ArrivalMean is the open-loop mean inter-arrival time (default 50µs).
	ArrivalMean time.Duration
	// Population is the logical client count arrivals are attributed to
	// (default 1e6 — "millions of simulated clients" costs one int64).
	Population int64

	// Timeout bounds one attempt (default 8ms); MaxRetries bounds attempts
	// (default 3); RetryDelay spaces refusal retries (default 1ms);
	// HedgeDelay, when positive, duplicates a slow read to the next replica
	// of the same shard (hedging never leaves the shard's replica group).
	Timeout    time.Duration
	MaxRetries int
	RetryDelay time.Duration
	HedgeDelay time.Duration

	// RunFor is the arrival window (default 300ms); Settle drains in-flight
	// work after it.
	RunFor time.Duration
	Settle time.Duration
	// CheckpointInterval is the per-node harness checkpoint cadence.
	CheckpointInterval time.Duration
}

func (p *Profile) fill() {
	if p.ArrivalMean <= 0 {
		p.ArrivalMean = 50 * time.Microsecond
	}
	if p.Population < 1 {
		p.Population = 1_000_000
	}
	if p.Timeout <= 0 {
		p.Timeout = 8 * time.Millisecond
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.RetryDelay <= 0 {
		p.RetryDelay = time.Millisecond
	}
	if p.RunFor <= 0 {
		p.RunFor = 300 * time.Millisecond
	}
	if p.Settle <= 0 {
		p.Settle = time.Duration(p.MaxRetries+1)*(p.Timeout+p.RetryDelay) + 20*time.Millisecond
	}
	if p.CheckpointInterval <= 0 {
		p.CheckpointInterval = 2 * time.Millisecond
	}
}

// Config parameterises one fabric run.
type Config struct {
	// System names the application (report labelling only).
	System string
	// Shards is the shard count (default 4); Replicas the replica-group
	// size per shard (default 2); Spares the pool of cold standby nodes
	// migrations move into (0 is valid — every move is then skipped as
	// "no spare available"; the campaign defaults it to 2). Total node
	// count is Shards*Replicas+Spares.
	Shards   int
	Replicas int
	Spares   int
	// VnodesPerShard sets the key ring's virtual-node count per shard
	// (default 16).
	VnodesPerShard int
	// Seed drives every derived seed: ring placement, node machines, the
	// arrival process, and the request stream.
	Seed int64
	// Recovery is the per-node harness configuration (the mode under test).
	Recovery recovery.Config
	// Link shapes the fabric's default link.
	Link netsim.LinkConfig
	// ProbeInterval/ProbeStale drive the router's per-node health view.
	ProbeInterval time.Duration
	ProbeStale    time.Duration

	// MigrationRoundGap spaces background delta rounds so live traffic
	// re-dirties pages between them (default 1ms). MigrationMaxRounds caps
	// the background phase (default 12); MigrationConvergePages is the
	// shipped-page threshold below which the dirty set is considered
	// converged and the cutover freeze begins (default 4).
	MigrationRoundGap      time.Duration
	MigrationMaxRounds     int
	MigrationConvergePages int

	// Profile shapes the client population.
	Profile Profile
	// Inj, when non-nil, is the network-level injector.
	Inj *faultinject.Injector
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Spares < 0 {
		c.Spares = 0
	}
	if c.VnodesPerShard <= 0 {
		c.VnodesPerShard = 16
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Millisecond
	}
	if c.ProbeStale <= 0 {
		c.ProbeStale = 5 * time.Millisecond
	}
	if c.MigrationRoundGap <= 0 {
		c.MigrationRoundGap = time.Millisecond
	}
	if c.MigrationMaxRounds <= 0 {
		c.MigrationMaxRounds = 12
	}
	if c.MigrationConvergePages <= 0 {
		c.MigrationConvergePages = 4
	}
	if c.Link.Latency == 0 {
		c.Link.Latency = 100 * time.Microsecond
		if c.Link.Jitter == 0 {
			c.Link.Jitter = 50 * time.Microsecond
		}
	}
	c.Profile.fill()
}

// Kill crashes one shard replica (resolved to whichever node owns it when
// the kill fires, so a kill after a completed move hits the new owner).
type Kill struct {
	At      time.Duration
	Shard   int
	Replica int
}

// Move live-migrates one shard replica to the next free spare node.
type Move struct {
	At      time.Duration
	Shard   int
	Replica int
}

// RingChange is a placement-ring change: the shard's primary replica
// relocates to a spare (funnelled through the same migration machinery) and
// the shard's read affinity rotates to the next slot.
type RingChange struct {
	At    time.Duration
	Shard int
}

// SnapshotRead schedules one concurrent-read batch against a shard replica:
// the owning node commits an MVCC snapshot of its live state and serves
// Count reads (default 16) off the frozen version at Readers fan-out
// (default 1). Like kills, the slot is resolved to whichever node owns it
// when the batch fires, so a batch after a completed move lands on the new
// owner.
type SnapshotRead struct {
	At      time.Duration
	Shard   int
	Replica int
	Count   int
	Readers int
}

// Schedule is the fault-and-rebalance script one run executes; the same
// schedule replays against every recovery mode under comparison.
type Schedule struct {
	Kills         []Kill
	Moves         []Move
	RingChanges   []RingChange
	SnapshotReads []SnapshotRead
}

// DefaultSchedule kills two shards' primaries around the first half of the
// traffic window, live-moves a third shard's secondary mid-traffic, and
// runs a ring change on a fourth shard late — so every mode sees kills and
// rebalances interleaved with open-loop load.
func DefaultSchedule(p Profile, shards, replicas int) Schedule {
	d := p.RunFor
	s := Schedule{Kills: []Kill{{At: d / 4, Shard: 0, Replica: 0}}}
	if shards > 1 {
		s.Kills = append(s.Kills, Kill{At: d / 2, Shard: 1 % shards, Replica: 0})
	}
	mv := Move{At: d * 35 / 100, Shard: 2 % shards}
	if replicas > 1 {
		mv.Replica = 1
	}
	s.Moves = []Move{mv}
	s.RingChanges = []RingChange{{At: d * 65 / 100, Shard: 3 % shards}}
	return s
}

// --- message envelopes (netsim payloads) ---

// reqEnv travels frontend → router: one client attempt.
type reqEnv struct {
	Client  int64
	RID     uint64
	Attempt int
	Req     *workload.Request
}

// dispatchEnv travels router → node: one routed attempt, stamped with the
// shard's ownership epoch at dispatch and the write fan-out width.
type dispatchEnv struct {
	Client  int64
	RID     uint64
	Attempt int
	Req     *workload.Request
	Shard   int
	Epoch   int
	// Fan is the replica-group width this write fanned out to (0 for the
	// single-destination read path).
	Fan int
}

// respEnv travels node → router.
type respEnv struct {
	Client  int64
	RID     uint64
	Attempt int
	Shard   int
	Node    int
	// Epoch echoes the dispatch-time ownership epoch: the router's
	// non-owner oracle checks it against the shard's current epoch.
	Epoch int
	// KillEpoch is the node's kill count at dispatch; a kill window only
	// closes on a response computed after the kill that opened it.
	KillEpoch int
	Ok        bool
	Effective bool
	Refused   bool
	Op        workload.Op
	Fan       int
}

// clientRespEnv travels router → frontend: the aggregated outcome of one
// attempt (writes collapse their fan-out into one answer).
type clientRespEnv struct {
	Client    int64
	RID       uint64
	Attempt   int
	Effective bool
	Refused   bool
}

type probeEnv struct{}

type ackEnv struct{ Node int }
