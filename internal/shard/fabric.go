package shard

import (
	"fmt"
	"sort"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/netsim"
	"phoenix/internal/recovery"
	"phoenix/internal/simclock"
	"phoenix/internal/workload"
)

// Fabric is one live sharded run.
type Fabric struct {
	cfg    Config
	clk    *simclock.Clock
	net    *netsim.Network
	router *router
	fe     *frontend
	nodes  []*node

	// spares is the pool of free standby node indexes migrations draw
	// from; an aborted migration returns its untouched destination.
	spares []int

	deadline time.Duration

	// request outcome accounting.
	totalRequests int
	served        int
	retried       int
	stale         int
	failed        int
	latencies     []time.Duration

	windows []*windowRec
	openW   []*windowRec // per-node open kill window

	migrations  []*migration
	activeShard map[int]*migration
	activeSrc   map[int]*migration

	// acked is the acknowledged-write ledger: key → present. The lost-write
	// oracle audits it against the live dataset after the run.
	acked      map[string]bool
	migrated   []bool
	shardKills []int
	ringGen    int

	lostAcked     int
	lostKeys      []string
	ledgerChecked int

	firstErr error
}

// windowRec is one per-replica kill window: kill time until the killed
// node's first effective read reaches the router.
type windowRec struct {
	shard, replica, node int
	killEpoch            int
	start, end           time.Duration
	closed               bool
}

func (f *Fabric) fail(err error) {
	if f.firstErr == nil {
		f.firstErr = err
	}
}

func (f *Fabric) phoenixMode() bool { return f.cfg.Recovery.Mode == recovery.ModePhoenix }

// Run executes one sharded fabric under one recovery configuration against
// the schedule and returns its report.
func Run(cfg Config, mk recovery.AppFactory, sched Schedule) (Report, error) {
	cfg.fill()
	clk := simclock.New()
	f := &Fabric{
		cfg:         cfg,
		clk:         clk,
		net:         netsim.New(clk, cfg.Link, cfg.Seed, cfg.Inj),
		deadline:    cfg.Profile.RunFor,
		activeShard: make(map[int]*migration),
		activeSrc:   make(map[int]*migration),
		acked:       make(map[string]bool),
		migrated:    make([]bool, cfg.Shards),
		shardKills:  make([]int, cfg.Shards),
	}
	f.router = newRouter(f)
	f.openW = make([]*windowRec, cfg.Shards*cfg.Replicas+cfg.Spares)

	// Pre-split the warm set so each shard's replicas hold exactly their
	// arc of the keyspace.
	warmByShard := make([][]*workload.Request, cfg.Shards)
	for _, wr := range cfg.Profile.Warm {
		s := f.router.ring.KeyShard(wr.Key)
		warmByShard[s] = append(warmByShard[s], wr)
	}

	// Active nodes: shard s replica r at index s*R+r, each with its own
	// machine (stopwatch clock) and injector.
	total := cfg.Shards*cfg.Replicas + cfg.Spares
	for i := 0; i < total; i++ {
		m := kernel.NewMachine(cfg.Seed*7919 + int64(i) + 1)
		inj := faultinject.New()
		app, gen := mk(inj)
		h := recovery.NewHarness(m, cfg.Recovery, app, gen, inj)
		nd := &node{f: f, idx: i, id: nodeID(i), h: h, shard: -1}
		if i < cfg.Shards*cfg.Replicas {
			nd.shard = i / cfg.Replicas
			nd.replica = i % cfg.Replicas
			if err := h.Boot(); err != nil {
				return Report{}, fmt.Errorf("shard: node %d boot: %w", i, err)
			}
			for _, wr := range warmByShard[nd.shard] {
				if _, _, err := h.ServeRequest(wr); err != nil {
					return Report{}, fmt.Errorf("shard: node %d warm: %w", i, err)
				}
			}
			nd.state = stateServing
		} else {
			// Spares stay cold: an un-booted harness is the only adoption
			// target AdoptPreserved accepts.
			nd.state = stateSpare
			f.spares = append(f.spares, i)
		}
		f.net.Register(nd.id, nd.handle)
		f.nodes = append(f.nodes, nd)
	}

	f.net.Register(routerID, f.router.handle)
	f.fe = newFrontend(f)
	f.net.Register(feID, f.fe.handle)
	f.router.start()
	f.fe.start()

	for _, k := range sched.Kills {
		k := k
		if k.Shard < 0 || k.Shard >= cfg.Shards || k.Replica < 0 || k.Replica >= cfg.Replicas {
			return Report{}, fmt.Errorf("shard: kill targets (%d,%d) outside %dx%d", k.Shard, k.Replica, cfg.Shards, cfg.Replicas)
		}
		clk.AfterFunc(k.At, func() { f.killReplica(k.Shard, k.Replica) })
	}
	for _, mv := range sched.Moves {
		mv := mv
		if mv.Shard < 0 || mv.Shard >= cfg.Shards || mv.Replica < 0 || mv.Replica >= cfg.Replicas {
			return Report{}, fmt.Errorf("shard: move targets (%d,%d) outside %dx%d", mv.Shard, mv.Replica, cfg.Shards, cfg.Replicas)
		}
		clk.AfterFunc(mv.At, func() { f.startMove(mv.Shard, mv.Replica, "move") })
	}
	for _, rc := range sched.RingChanges {
		rc := rc
		if rc.Shard < 0 || rc.Shard >= cfg.Shards {
			return Report{}, fmt.Errorf("shard: ring change targets shard %d outside %d", rc.Shard, cfg.Shards)
		}
		clk.AfterFunc(rc.At, func() { f.ringChange(rc.Shard) })
	}
	for _, sr := range sched.SnapshotReads {
		sr := sr
		if sr.Shard < 0 || sr.Shard >= cfg.Shards || sr.Replica < 0 || sr.Replica >= cfg.Replicas {
			return Report{}, fmt.Errorf("shard: snapshot read targets (%d,%d) outside %dx%d", sr.Shard, sr.Replica, cfg.Shards, cfg.Replicas)
		}
		clk.AfterFunc(sr.At, func() {
			f.nodes[f.router.placement[sr.Shard][sr.Replica]].snapshotRead(sr.Count, sr.Readers)
		})
	}

	clk.Advance(cfg.Profile.RunFor + cfg.Profile.Settle)
	if f.firstErr != nil {
		return Report{}, f.firstErr
	}
	f.auditLedger()
	if f.firstErr != nil {
		return Report{}, f.firstErr
	}
	return f.report(sched), nil
}

// killReplica resolves (shard, replica) to whichever node owns the slot
// right now — a kill scheduled after a move lands on the new owner.
func (f *Fabric) killReplica(s, r int) {
	f.shardKills[s]++
	f.nodes[f.router.placement[s][r]].kill()
}

// ringChange rotates the shard's read affinity and relocates its primary
// through the migration machinery — the arc's ownership demonstrably moves.
func (f *Fabric) ringChange(s int) {
	f.ringGen++
	f.router.slotRot[s]++
	f.startMove(s, 0, "ring-change")
}

func (f *Fabric) openKillWindow(nd *node) {
	if f.openW[nd.idx] != nil || nd.shard < 0 {
		return
	}
	w := &windowRec{shard: nd.shard, replica: nd.replica, node: nd.idx, killEpoch: nd.kills, start: f.clk.Now()}
	f.windows = append(f.windows, w)
	f.openW[nd.idx] = w
}

// ledgerWrite records an acknowledged effective write. The ack condition is
// "every replica applied it", so a later audit read against any owner must
// find the key.
func (f *Fabric) ledgerWrite(req *workload.Request) {
	if req.Op == workload.OpDelete {
		delete(f.acked, req.Key)
		return
	}
	f.acked[req.Key] = true
}

// auditLedger is the lost-write oracle: after the run settles, every
// acknowledged write on a migrated shard must still be readable from the
// shard's current replica group. Kills are excluded for the modes that
// legitimately lose state on a kill (builtin may drop sub-checkpoint
// writes; vanilla drops everything) — PHOENIX shards are audited
// unconditionally, since preservation is lossless across both kills and
// migrations.
func (f *Fabric) auditLedger() {
	keys := make([]string, 0, len(f.acked))
	for k := range f.acked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		s := f.router.ring.KeyShard(key)
		if !f.migrated[s] {
			continue
		}
		if !f.phoenixMode() && f.shardKills[s] > 0 {
			continue
		}
		var nd *node
		for _, n := range f.router.placement[s] {
			if f.nodes[n].state == stateServing {
				nd = f.nodes[n]
				break
			}
		}
		if nd == nil {
			continue
		}
		nd.syncClock()
		_, eff, err := nd.h.ServeRequest(&workload.Request{Op: workload.OpRead, Key: key})
		if err != nil {
			f.fail(fmt.Errorf("shard: ledger audit read %q: %w", key, err))
			return
		}
		f.ledgerChecked++
		if !eff {
			f.lostAcked++
			if len(f.lostKeys) < 8 {
				f.lostKeys = append(f.lostKeys, key)
			}
		}
	}
}
