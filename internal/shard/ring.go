package shard

import "sort"

// Ring is the consistent-hash key ring: each shard owns VnodesPerShard
// seeded points on a 64-bit circle, and a key belongs to the shard owning
// the first point at or clockwise of the key's hash. The ring is static for
// a run — key→shard is pinned at construction — while shard→node placement
// is the dynamic layer migrations rewrite. Virtual nodes keep the arcs
// balanced; seeding them from the run seed makes the key partition a pure
// function of (seed, shards, vnodes).
type Ring struct {
	points []ringPoint // sorted by hash point
	shards int
}

type ringPoint struct {
	at    uint64
	shard int
}

// splitmix64 scrambles one 64-bit value; adjacent inputs map to
// decorrelated points, which is what spreads each shard's vnodes around the
// circle instead of clustering them.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over the key bytes.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewRing builds the ring for shards×vnodes seeded points.
func NewRing(seed int64, shards, vnodes int) *Ring {
	r := &Ring{shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			x := splitmix64(uint64(seed)*0x100000001b3 + uint64(s)<<20 + uint64(v))
			r.points = append(r.points, ringPoint{at: x, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].at != r.points[j].at {
			return r.points[i].at < r.points[j].at
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// KeyShard maps a key to its owning shard.
func (r *Ring) KeyShard(key string) int {
	h := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].at >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// KeySlot maps a key to its preferred replica slot within the owning
// shard's group — the read-affinity spread that keeps a hot shard's reads
// from all landing on one replica.
func (r *Ring) KeySlot(key string, replicas int) int {
	if replicas <= 1 {
		return 0
	}
	return int(splitmix64(fnv64(key)) % uint64(replicas))
}
