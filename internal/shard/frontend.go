package shard

import (
	"time"

	"phoenix/internal/netsim"
	"phoenix/internal/simclock"
	"phoenix/internal/workload"
)

// frontend is the open-loop client population: arrivals come from a seeded
// Poisson-like process against the fabric clock, independent of when
// earlier requests complete — a stalled shard cannot slow the offered load
// down, so unavailability surfaces as queueing, timeouts, and tail latency.
// Each arrival belongs to one of Population logical clients; the frontend
// tracks per-request retry state (timeouts, refusal retries, read hedges)
// and classifies outcomes.
type frontend struct {
	f       *Fabric
	arrival *workload.OpenLoop
	gen     workload.Generator

	rid     uint64
	pending map[uint64]*pending
}

type pending struct {
	client   int64
	req      *workload.Request
	attempt  int
	resent   bool
	issuedAt time.Duration
	timeout  *simclock.Timer
	hedge    *simclock.Timer
}

func newFrontend(f *Fabric) *frontend {
	return &frontend{
		f:       f,
		arrival: workload.NewOpenLoop(f.cfg.Seed*999_983+1, f.cfg.Profile.ArrivalMean, f.cfg.Profile.Population, 0),
		gen:     f.cfg.Profile.Proto.Clone(f.cfg.Seed*1_000_003 + 1),
		pending: make(map[uint64]*pending),
	}
}

// start schedules the first arrival; each arrival schedules the next, so
// the open-loop stream unrolls lazily on the fabric clock.
func (fe *frontend) start() { fe.scheduleNext() }

func (fe *frontend) scheduleNext() {
	at, client := fe.arrival.Next()
	if at >= fe.f.deadline {
		return
	}
	fe.f.clk.AfterFunc(at-fe.f.clk.Now(), func() { fe.arrive(client) })
}

func (fe *frontend) arrive(client int64) {
	fe.scheduleNext()
	fe.rid++
	p := &pending{client: client, req: fe.gen.Next(), issuedAt: fe.f.clk.Now()}
	fe.pending[fe.rid] = p
	fe.f.totalRequests++
	fe.send(fe.rid, p)
}

func (fe *frontend) send(rid uint64, p *pending) {
	fe.stopTimers(p)
	fe.f.net.Send(feID, routerID, reqEnv{Client: p.client, RID: rid, Attempt: p.attempt, Req: p.req})
	p.timeout = fe.f.clk.AfterFunc(fe.f.cfg.Profile.Timeout, func() { fe.onTimeout(rid) })
	if hd := fe.f.cfg.Profile.HedgeDelay; hd > 0 && p.attempt == 0 && !isWrite(p.req.Op) {
		p.hedge = fe.f.clk.AfterFunc(hd, func() { fe.onHedge(rid) })
	}
}

func (fe *frontend) stopTimers(p *pending) {
	if p.timeout != nil {
		fe.f.clk.Stop(p.timeout)
		p.timeout = nil
	}
	if p.hedge != nil {
		fe.f.clk.Stop(p.hedge)
		p.hedge = nil
	}
}

// onHedge duplicates a slow read at the next replica slot of the same
// shard; whichever response returns first wins.
func (fe *frontend) onHedge(rid uint64) {
	p, ok := fe.pending[rid]
	if !ok {
		return
	}
	p.hedge = nil
	p.resent = true
	fe.f.net.Send(feID, routerID, reqEnv{Client: p.client, RID: rid, Attempt: p.attempt + 1, Req: p.req})
}

func (fe *frontend) onTimeout(rid uint64) {
	p, ok := fe.pending[rid]
	if !ok {
		return
	}
	p.timeout = nil
	if p.attempt >= fe.f.cfg.Profile.MaxRetries {
		fe.finish(rid, p, false, true)
		return
	}
	p.attempt++
	p.resent = true
	fe.send(rid, p)
}

func (fe *frontend) handle(m netsim.Message) {
	env, ok := m.Payload.(clientRespEnv)
	if !ok {
		return
	}
	// Hedge losers, write-fan duplicates, and responses to requests that
	// already timed out carry an unknown RID: drop them.
	p, live := fe.pending[env.RID]
	if !live {
		return
	}
	if env.Refused {
		if p.timeout != nil {
			fe.f.clk.Stop(p.timeout)
			p.timeout = nil
		}
		if p.attempt >= fe.f.cfg.Profile.MaxRetries {
			fe.finish(env.RID, p, false, true)
			return
		}
		p.attempt++
		p.resent = true
		fe.f.clk.AfterFunc(fe.f.cfg.Profile.RetryDelay, func() {
			if q, ok := fe.pending[env.RID]; ok {
				fe.send(env.RID, q)
			}
		})
		return
	}
	fe.finish(env.RID, p, env.Effective, false)
}

// finish classifies the request's outcome and, for acknowledged effective
// writes, updates the fabric's acked-write ledger — the ground truth the
// lost-write oracle audits after the run.
func (fe *frontend) finish(rid uint64, p *pending, effective, failed bool) {
	fe.stopTimers(p)
	delete(fe.pending, rid)
	f := fe.f
	if failed {
		f.failed++
		return
	}
	f.latencies = append(f.latencies, f.clk.Now()-p.issuedAt)
	switch {
	case effective && !p.resent:
		f.served++
	case effective:
		f.retried++
	default:
		f.stale++
	}
	if effective && isWrite(p.req.Op) {
		f.ledgerWrite(p.req)
	}
}
