package shard

import (
	"fmt"
	"time"

	"phoenix/internal/netsim"
	"phoenix/internal/recovery"
	"phoenix/internal/simclock"
)

type nodeState int

const (
	// stateSpare is a cold standby: machine and harness constructed, app
	// never booted — the only state AdoptPreserved accepts, so spares are
	// the only legal migration destinations.
	stateSpare nodeState = iota
	stateServing
	stateDown
	// stateRetired is a migration source after cutover: its process is
	// dead (single-owner invariant) and it serves nothing ever again.
	stateRetired
)

func (s nodeState) String() string {
	switch s {
	case stateSpare:
		return "spare"
	case stateServing:
		return "serving"
	case stateDown:
		return "down"
	case stateRetired:
		return "retired"
	}
	return "?"
}

// node is one fabric member: a recovery harness over an application
// instance, serving one request at a time from a FIFO queue. Active nodes
// own exactly one shard replica; spares own nothing until a migration
// lands on them. The harness's machine clock is the node's stopwatch; the
// fabric clock orders its interactions with the world.
type node struct {
	f   *Fabric
	idx int
	id  netsim.NodeID
	h   *recovery.Harness

	state   nodeState
	shard   int // -1 while spare/retired
	replica int

	queue      []dispatchEnv
	busy       bool
	completion *simclock.Timer

	// accounting
	accepted          int
	refused           int
	kills             int
	recoveryTotal     time.Duration
	snapshotReads     int
	snapshotEffective int
	snapshotStale     int
}

func (nd *node) handle(m netsim.Message) {
	switch env := m.Payload.(type) {
	case dispatchEnv:
		nd.onRequest(env)
	case probeEnv:
		// Only a serving owner acks; spares, retired, and down nodes go
		// dark so the router routes reads around them.
		if nd.state == stateServing {
			nd.f.net.Send(nd.id, routerID, ackEnv{Node: nd.idx})
		}
	}
}

func (nd *node) respond(env dispatchEnv, ok, eff, refused bool) respEnv {
	return respEnv{
		Client: env.Client, RID: env.RID, Attempt: env.Attempt,
		Shard: env.Shard, Node: nd.idx, Epoch: env.Epoch, KillEpoch: nd.kills,
		Ok: ok, Effective: eff, Refused: refused, Op: env.Req.Op, Fan: env.Fan,
	}
}

func (nd *node) onRequest(env dispatchEnv) {
	if nd.state != stateServing {
		nd.refused++
		nd.f.net.Send(nd.id, routerID, nd.respond(env, false, false, true))
		return
	}
	nd.accepted++
	nd.queue = append(nd.queue, env)
	nd.startNext()
}

// startNext dispatches the queue head: the harness computes the outcome and
// service duration on the node's machine clock, and the response lands that
// far in the fabric's future (single-server queueing).
func (nd *node) startNext() {
	if nd.busy || nd.state != stateServing || len(nd.queue) == 0 {
		return
	}
	env := nd.queue[0]
	nd.queue = nd.queue[1:]
	nd.busy = true

	nd.syncClock()
	before := nd.h.M.Clock.Now()
	ok, eff, err := nd.h.ServeRequest(env.Req)
	if err != nil {
		nd.f.fail(fmt.Errorf("shard: node %d serve: %w", nd.idx, err))
		return
	}
	dur := nd.h.M.Clock.Now() - before
	resp := nd.respond(env, ok, eff, false)
	nd.completion = nd.f.clk.AfterFunc(dur, func() {
		nd.busy = false
		nd.completion = nil
		nd.f.net.Send(nd.id, routerID, resp)
		nd.startNext()
	})
}

// syncClock pulls the machine clock forward to fabric time (never backward).
func (nd *node) syncClock() {
	if now := nd.f.clk.Now(); now > nd.h.M.Clock.Now() {
		nd.h.M.Clock.AdvanceTo(now)
	}
}

// kill crashes the node's process at fabric time and drives the harness's
// real recovery path; the node is down for exactly the simulated recovery
// duration. A migration sourcing from this node aborts first — its buffered
// baseline dies with the process.
func (nd *node) kill() {
	if nd.state != stateServing && nd.state != stateDown {
		return
	}
	if nd.state == stateDown {
		return
	}
	nd.f.abortMigrationsFrom(nd.idx, "source killed")
	nd.state = stateDown
	nd.kills++
	// Queued requests and the in-flight one vanish with the process and
	// will never produce responses; the router's in-flight ledger must
	// forget them or a frozen shard would never drain. (Requests still on
	// the wire do get refused by the down node, so they drain normally.)
	lost := len(nd.queue)
	if nd.completion != nil {
		nd.f.clk.Stop(nd.completion)
		nd.completion = nil
		lost++
	}
	nd.busy = false
	nd.f.router.forgetInflight(nd.idx, lost)
	nd.queue = nil

	nd.f.openKillWindow(nd)

	nd.syncClock()
	before := nd.h.M.Clock.Now()
	ci := nd.h.Proc().Run(func() { nd.h.Proc().AS.ReadU64(crashVA) })
	if ci == nil {
		nd.f.fail(fmt.Errorf("shard: node %d synthetic crash did not register", nd.idx))
		return
	}
	if err := nd.h.HandleFailureForREPL(ci); err != nil {
		nd.f.fail(fmt.Errorf("shard: node %d recovery: %w", nd.idx, err))
		return
	}
	rec := nd.h.M.Clock.Now() - before
	nd.recoveryTotal += rec
	nd.f.clk.AfterFunc(rec, func() {
		if nd.state == stateDown {
			nd.state = stateServing
			nd.startNext()
		}
	})
}

// snapshotRead executes one scheduled concurrent-read batch: commit an MVCC
// snapshot of the node's live state and serve count reads off it at the
// given fan-out. Only a serving owner runs the batch — spares and retired
// sources own no state, and a down node has none to freeze. Apps without
// snapshot support skip silently so mixed-system schedules stay replayable.
func (nd *node) snapshotRead(count, readers int) {
	if nd.state != stateServing {
		return
	}
	if _, ok := nd.h.App.(recovery.SnapshotServer); !ok {
		return
	}
	if count <= 0 {
		count = 16
	}
	if readers <= 0 {
		readers = 1
	}
	nd.syncClock()
	eff, stale, err := nd.h.SnapshotReadBatch(count, readers)
	if err != nil {
		nd.f.fail(fmt.Errorf("shard: node %d snapshot read: %w", nd.idx, err))
		return
	}
	nd.snapshotReads++
	nd.snapshotEffective += eff
	nd.snapshotStale += stale
}

// retire marks a migration source dead-for-good after its cutover. Any
// requests still queued were dispatched pre-freeze and already drained by
// construction; the guard keeps the invariant visible.
func (nd *node) retire() {
	nd.state = stateRetired
	nd.shard, nd.replica = -1, 0
	if len(nd.queue) != 0 {
		nd.f.fail(fmt.Errorf("shard: node %d retired with %d queued requests", nd.idx, len(nd.queue)))
	}
}
