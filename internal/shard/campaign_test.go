package shard_test

import (
	"bytes"
	"testing"

	"phoenix/internal/apps/registry"
	"phoenix/internal/recovery"
	"phoenix/internal/shard"
)

// TestCheckShardAllApps runs the full sharded availability campaign — every
// shardable registered app, PHOENIX vs builtin vs vanilla under the same
// kill-and-rebalance schedule — and enforces its contract, including the
// internal same-seed byte-identity replay.
func TestCheckShardAllApps(t *testing.T) {
	results, err := shard.CheckShard(registry.ShardSystems(1), shard.Options{Seed: 1})
	for _, res := range results {
		t.Logf("\n%s", shard.FmtComparison(res))
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(registry.ShardNames()) {
		t.Fatalf("campaign covered %d systems, want %d", len(results), len(registry.ShardNames()))
	}
}

// TestShardReportByteIdentity is the golden determinism check at the Run
// level: the identical configuration and schedule must produce byte-identical
// JSON, and a different seed must not.
func TestShardReportByteIdentity(t *testing.T) {
	run := func(seed int64) []byte {
		cfg, mk, sched := smokeConfig(seed, recovery.ModePhoenix)
		rep, err := shard.Run(cfg, mk, sched)
		if err != nil {
			t.Fatal(err)
		}
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(3), run(3)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed runs diverged:\n%s\n%s", a, b)
	}
	if c := run(4); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports — the seed is not reaching the run")
	}
}
