package shard

import (
	"time"

	"phoenix/internal/netsim"
	"phoenix/internal/workload"
)

// router is the shard-aware front tier: it maps keys to shards through the
// ring, shards to nodes through the (mutable) placement table, health-probes
// every node, spreads reads across a shard's replica group by key slot, fans
// writes out to the whole group, and holds a shard's traffic while its
// migration cuts over. Retries and hedges never leave the shard's replica
// group. It also runs two of the campaign's oracles inline: the non-owner
// check (a non-refused response computed under a stale ownership epoch) and
// the per-node kill-window bookkeeping.
type router struct {
	f *Fabric

	ring *Ring
	// placement maps shard → replica slot → node index; migrations rewrite
	// it at cutover, under the shard's freeze.
	placement [][]int
	// epoch is the per-shard ownership generation, bumped exactly when the
	// shard's placement changes.
	epoch []int
	// slotRot rotates a shard's read affinity; ring changes bump it.
	slotRot []int

	lastAck []time.Duration

	frozen  []bool
	freezeQ [][]reqEnv

	// inflight counts dispatches to each node that have not yet produced a
	// response at the router — the drain condition for a frozen shard.
	inflight []int

	// wpends aggregates write fan-outs: one client answer per attempt.
	wpends map[wkey]*wagg

	nonOwnerServes int
}

type wkey struct {
	rid     uint64
	attempt int
}

type wagg struct {
	need, responded, effective, refused int
}

func newRouter(f *Fabric) *router {
	cfg := f.cfg
	r := &router{
		f:        f,
		ring:     NewRing(cfg.Seed, cfg.Shards, cfg.VnodesPerShard),
		epoch:    make([]int, cfg.Shards),
		slotRot:  make([]int, cfg.Shards),
		frozen:   make([]bool, cfg.Shards),
		freezeQ:  make([][]reqEnv, cfg.Shards),
		lastAck:  make([]time.Duration, cfg.Shards*cfg.Replicas+cfg.Spares),
		inflight: make([]int, cfg.Shards*cfg.Replicas+cfg.Spares),
		wpends:   make(map[wkey]*wagg),
	}
	for s := 0; s < cfg.Shards; s++ {
		group := make([]int, cfg.Replicas)
		for i := range group {
			group[i] = s*cfg.Replicas + i
		}
		r.placement = append(r.placement, group)
	}
	return r
}

func (r *router) start() { r.probe() }

func (r *router) probe() {
	for i := range r.f.nodes {
		r.f.net.Send(routerID, nodeID(i), probeEnv{})
	}
	r.f.clk.AfterFunc(r.f.cfg.ProbeInterval, r.probe)
}

func (r *router) healthy(nodeIdx int) bool {
	return r.f.clk.Now()-r.lastAck[nodeIdx] <= r.f.cfg.ProbeStale
}

func (r *router) handle(m netsim.Message) {
	switch env := m.Payload.(type) {
	case reqEnv:
		r.route(env)
	case respEnv:
		r.onResponse(env)
	case ackEnv:
		r.lastAck[env.Node] = r.f.clk.Now()
	}
}

func isWrite(op workload.Op) bool {
	return op == workload.OpInsert || op == workload.OpUpdate || op == workload.OpDelete
}

// route resolves the key's shard and dispatches. A frozen shard's arrivals
// queue behind the cutover and re-route — against the new placement — when
// it unfreezes; their client-side timeout clocks keep running, which is how
// migration stalls surface as tail latency instead of disappearing.
func (r *router) route(env reqEnv) {
	s := r.ring.KeyShard(env.Req.Key)
	if r.frozen[s] {
		r.freezeQ[s] = append(r.freezeQ[s], env)
		return
	}
	group := r.placement[s]
	d := dispatchEnv{
		Client: env.Client, RID: env.RID, Attempt: env.Attempt,
		Req: env.Req, Shard: s, Epoch: r.epoch[s],
	}
	if isWrite(env.Req.Op) {
		// Writes replicate synchronously: fan to the whole group, ack the
		// client only when every replica applied it (puts are idempotent,
		// so a partial fan-out is safely retried whole).
		d.Fan = len(group)
		r.wpends[wkey{env.RID, env.Attempt}] = &wagg{need: len(group)}
		for _, n := range group {
			r.dispatch(n, d)
		}
		return
	}
	// Reads: slot affinity spreads the group; retries and hedges walk the
	// same group, never another shard's.
	start := (r.ring.KeySlot(env.Req.Key, len(group)) + r.slotRot[s] + env.Attempt) % len(group)
	for i := 0; i < len(group); i++ {
		n := group[(start+i)%len(group)]
		if r.healthy(n) {
			r.dispatch(n, d)
			return
		}
	}
	r.dispatch(group[start], d)
}

func (r *router) dispatch(nodeIdx int, d dispatchEnv) {
	r.inflight[nodeIdx]++
	r.f.net.Send(routerID, nodeID(nodeIdx), d)
}

// forgetInflight drops dispatches that died with a killed node's queue (the
// node will never respond to them); without this a frozen shard sharing the
// group with a killed replica could never drain.
func (r *router) forgetInflight(nodeIdx, n int) {
	r.inflight[nodeIdx] -= n
	if r.inflight[nodeIdx] < 0 {
		r.inflight[nodeIdx] = 0
	}
	r.f.pokeMigrations()
}

// groupInflight sums the in-flight dispatches across a shard's current
// replica group.
func (r *router) groupInflight(s int) int {
	total := 0
	for _, n := range r.placement[s] {
		total += r.inflight[n]
	}
	return total
}

func (r *router) onResponse(env respEnv) {
	if r.inflight[env.Node] > 0 {
		r.inflight[env.Node]--
	}

	// Non-owner oracle: ownership epochs bump exactly at placement flips,
	// and the freeze protocol drains every in-flight dispatch before
	// flipping — so a non-refused response carrying a stale epoch is a
	// request served by a node that no longer owned the shard.
	if !env.Refused && env.Epoch != r.epoch[env.Shard] {
		r.nonOwnerServes++
	}

	// An effective read from a killed node proves it serves real state
	// again: close its kill window. (Writes don't count — a freshly wiped
	// node answers writes instantly without having recovered anything.)
	isRead := env.Op == workload.OpRead || env.Op == workload.OpWebGet
	if w := r.f.openW[env.Node]; w != nil && !env.Refused && env.Effective && isRead && env.KillEpoch >= w.killEpoch {
		w.end = r.f.clk.Now()
		w.closed = true
		r.f.openW[env.Node] = nil
	}

	if env.Fan > 0 {
		r.onWriteResponse(env)
	} else {
		r.f.net.Send(routerID, feID, clientRespEnv{
			Client: env.Client, RID: env.RID, Attempt: env.Attempt,
			Effective: env.Effective, Refused: env.Refused,
		})
	}

	// A frozen shard may have just finished draining.
	r.f.pokeMigrations()
}

func (r *router) onWriteResponse(env respEnv) {
	k := wkey{env.RID, env.Attempt}
	agg, ok := r.wpends[k]
	if !ok {
		return
	}
	agg.responded++
	if env.Refused {
		agg.refused++
	} else if env.Effective {
		agg.effective++
	}
	if agg.responded < agg.need {
		return
	}
	delete(r.wpends, k)
	r.f.net.Send(routerID, feID, clientRespEnv{
		Client: env.Client, RID: env.RID, Attempt: env.Attempt,
		Effective: agg.refused == 0 && agg.effective == agg.need,
		Refused:   agg.refused > 0,
	})
}

// freeze holds a shard's dispatches for a migration cutover.
func (r *router) freeze(s int) { r.frozen[s] = true }

// unfreeze releases a shard and re-routes everything that queued behind the
// freeze — against the post-cutover placement.
func (r *router) unfreeze(s int) {
	if !r.frozen[s] {
		return
	}
	r.frozen[s] = false
	q := r.freezeQ[s]
	r.freezeQ[s] = nil
	for _, env := range q {
		r.route(env)
	}
}

// flip rewrites one replica slot of a shard's placement and bumps the
// ownership epoch. Callers hold the shard frozen and drained.
func (r *router) flip(s, replica, newNode int) {
	r.placement[s][replica] = newNode
	r.epoch[s]++
}
