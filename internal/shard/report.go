package shard

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// NodeReport is one fabric node's accounting for the run.
type NodeReport struct {
	Node int `json:"node"`
	// Shard/Replica are the node's final owned slot (-1 for spares and
	// retired migration sources).
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Role    string `json:"role"`

	Accepted          int   `json:"accepted"`
	Refused           int   `json:"refused"`
	Kills             int   `json:"kills"`
	RecoveryUs        int64 `json:"recovery_us"`
	PhoenixRestarts   int   `json:"phoenix_restarts"`
	OtherRestarts     int   `json:"other_restarts"`
	Checkpoints       int   `json:"checkpoints"`
	SnapshotReads     int   `json:"snapshot_reads"`
	SnapshotEffective int   `json:"snapshot_effective"`
	SnapshotStale     int   `json:"snapshot_stale"`
	// Counters is the node machine's recovery-counter snapshot (JSON maps
	// marshal with sorted keys, so the export is deterministic).
	Counters map[string]int64 `json:"counters"`
}

// WindowReport is one per-replica kill unavailability window.
type WindowReport struct {
	Shard   int   `json:"shard"`
	Replica int   `json:"replica"`
	Node    int   `json:"node"`
	StartUs int64 `json:"start_us"`
	EndUs   int64 `json:"end_us"`
	DurUs   int64 `json:"dur_us"`
	Closed  bool  `json:"closed"`
}

// RoundReport is one migration delta round.
type RoundReport struct {
	Scanned int   `json:"scanned"`
	Hashed  int   `json:"hashed"`
	Shipped int   `json:"shipped"`
	CostUs  int64 `json:"cost_us"`
}

// MoveReport is one shard move (live migration or the non-PHOENIX
// stop-and-copy degradation).
type MoveReport struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Reason  string `json:"reason"`
	SrcNode int    `json:"src_node"`
	DstNode int    `json:"dst_node"`

	// Rounds are the background delta rounds (empty for stop-and-copy);
	// Pages is the tracked page count at cutover; ShippedPages the total
	// transfer volume; FinalDelta the pages shipped inside the frozen
	// cutover — the quantity the cutover window scales with.
	Rounds       []RoundReport `json:"rounds,omitempty"`
	Pages        int           `json:"pages"`
	ShippedPages int           `json:"shipped_pages"`
	FinalDelta   int           `json:"final_delta"`

	StartUs int64 `json:"start_us"`
	// FreezeUs..EndUs is the shard's frozen window (the migration's
	// contribution to unavailability); CutoverUs is its drain-free tail —
	// final ship, successor install, adopting boot — the part whose cost is
	// a pure function of what still had to move.
	FreezeUs   int64  `json:"freeze_us"`
	EndUs      int64  `json:"end_us"`
	FrozenUs   int64  `json:"frozen_us"`
	CutoverUs  int64  `json:"cutover_us"`
	Completed  bool   `json:"completed"`
	Aborted    bool   `json:"aborted"`
	Skipped    bool   `json:"skipped"`
	SkipReason string `json:"skip_reason,omitempty"`
}

// Report is the availability-under-traffic result of one sharded run.
// Field order is fixed and durations are µs integers, so json.Marshal of
// equal runs yields byte-identical output.
type Report struct {
	System   string `json:"system"`
	Mode     string `json:"mode"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`
	Spares   int    `json:"spares"`
	Vnodes   int    `json:"vnodes_per_shard"`

	Population int64 `json:"population"`
	RingGen    int   `json:"ring_gen"`

	Requests int `json:"requests"`
	Served   int `json:"served"`
	Retried  int `json:"retried"`
	Stale    int `json:"stale"`
	Failed   int `json:"failed"`
	// AvailabilityPct is effective requests (served + retried) over total.
	AvailabilityPct float64 `json:"availability_pct"`

	P50Us  int64 `json:"p50_us"`
	P99Us  int64 `json:"p99_us"`
	P999Us int64 `json:"p999_us"`

	Kills          int            `json:"kills"`
	UnavailTotalUs int64          `json:"unavail_total_us"`
	Unrecovered    int            `json:"unrecovered"`
	Windows        []WindowReport `json:"windows"`

	Moves            int          `json:"moves"`
	RingChanges      int          `json:"ring_changes"`
	MovesCompleted   int          `json:"moves_completed"`
	MovesAborted     int          `json:"moves_aborted"`
	MovesSkipped     int          `json:"moves_skipped"`
	MigrateFrozenUs  int64        `json:"migrate_frozen_us"`
	MigrateCutoverUs int64        `json:"migrate_cutover_us"`
	MoveReports      []MoveReport `json:"move_reports"`

	NonOwnerServes int      `json:"non_owner_serves"`
	AckedWrites    int      `json:"acked_writes"`
	LedgerChecked  int      `json:"ledger_checked"`
	LostAcked      int      `json:"lost_acked"`
	LostKeys       []string `json:"lost_keys,omitempty"`

	// Snapshot-read accounting (scheduled concurrent-read batches off MVCC
	// versions). SnapshotStale is an oracle: it must stay zero.
	SnapshotReads     int `json:"snapshot_reads"`
	SnapshotEffective int `json:"snapshot_effective"`
	SnapshotStale     int `json:"snapshot_stale"`

	NetSent           int `json:"net_sent"`
	NetDelivered      int `json:"net_delivered"`
	NetDropped        int `json:"net_dropped"`
	NetDuplicated     int `json:"net_duplicated"`
	NetPartitionDrops int `json:"net_partition_drops"`
	NetInjectedDrops  int `json:"net_injected_drops"`

	Nodes []NodeReport `json:"nodes"`
}

// JSON renders the report as deterministic JSON.
func (r Report) JSON() ([]byte, error) { return json.Marshal(r) }

func (r Report) String() string {
	return fmt.Sprintf("%s/%s: avail=%.2f%% (served=%d retried=%d stale=%d failed=%d of %d) p50=%dµs p99=%dµs p999=%dµs kills=%d moves=%d/%d unavail=%dµs frozen=%dµs cutover=%dµs nonowner=%d lost=%d",
		r.System, r.Mode, r.AvailabilityPct, r.Served, r.Retried, r.Stale, r.Failed, r.Requests,
		r.P50Us, r.P99Us, r.P999Us, r.Kills, r.MovesCompleted, r.Moves+r.RingChanges,
		r.UnavailTotalUs, r.MigrateFrozenUs, r.MigrateCutoverUs, r.NonOwnerServes, r.LostAcked)
}

func percentile(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Microseconds()
}

func (f *Fabric) report(sched Schedule) Report {
	end := f.cfg.Profile.RunFor + f.cfg.Profile.Settle
	rep := Report{
		System:   f.cfg.System,
		Mode:     f.cfg.Recovery.Mode.String(),
		Seed:     f.cfg.Seed,
		Shards:   f.cfg.Shards,
		Replicas: f.cfg.Replicas,
		Spares:   f.cfg.Spares,
		Vnodes:   f.cfg.VnodesPerShard,

		Population: f.cfg.Profile.Population,
		RingGen:    f.ringGen,

		Requests: f.totalRequests,
		Served:   f.served,
		Retried:  f.retried,
		Stale:    f.stale,
		Failed:   f.failed,

		Kills:       len(sched.Kills),
		Moves:       len(sched.Moves),
		RingChanges: len(sched.RingChanges),

		NonOwnerServes: f.router.nonOwnerServes,
		AckedWrites:    len(f.acked),
		LedgerChecked:  f.ledgerChecked,
		LostAcked:      f.lostAcked,
		LostKeys:       f.lostKeys,

		NetSent:           f.net.Stat.Sent,
		NetDelivered:      f.net.Stat.Delivered,
		NetDropped:        f.net.Stat.Dropped,
		NetDuplicated:     f.net.Stat.Duplicated,
		NetPartitionDrops: f.net.Stat.PartitionDrops,
		NetInjectedDrops:  f.net.Stat.InjectedDrops,
	}
	if rep.Requests > 0 {
		rep.AvailabilityPct = 100 * float64(rep.Served+rep.Retried) / float64(rep.Requests)
	}

	sort.Slice(f.latencies, func(i, j int) bool { return f.latencies[i] < f.latencies[j] })
	rep.P50Us = percentile(f.latencies, 0.50)
	rep.P99Us = percentile(f.latencies, 0.99)
	rep.P999Us = percentile(f.latencies, 0.999)

	for _, w := range f.windows {
		if !w.closed {
			w.end = end
			rep.Unrecovered++
		}
		wr := WindowReport{
			Shard: w.shard, Replica: w.replica, Node: w.node,
			StartUs: w.start.Microseconds(),
			EndUs:   w.end.Microseconds(),
			DurUs:   (w.end - w.start).Microseconds(),
			Closed:  w.closed,
		}
		rep.UnavailTotalUs += wr.DurUs
		rep.Windows = append(rep.Windows, wr)
	}

	for _, m := range f.migrations {
		mr := MoveReport{
			Shard: m.shard, Replica: m.replica, Reason: m.reason,
			SrcNode: m.srcNode, DstNode: m.dstNode,
			Pages: m.pages, ShippedPages: 0, FinalDelta: m.finalDelta,
			StartUs:    m.startAt.Microseconds(),
			Completed:  m.finished,
			Aborted:    m.aborted,
			Skipped:    m.skipped,
			SkipReason: m.skipReason,
		}
		if m.mig != nil {
			mr.ShippedPages = m.mig.ShippedPages()
		}
		for _, rr := range m.rounds {
			mr.Rounds = append(mr.Rounds, RoundReport{rr.scanned, rr.hashed, rr.shipped, rr.cost.Microseconds()})
		}
		if m.freezeAt > 0 || m.finished {
			mr.FreezeUs = m.freezeAt.Microseconds()
			mr.EndUs = m.endAt.Microseconds()
			if m.finished {
				mr.FrozenUs = (m.endAt - m.freezeAt).Microseconds()
				mr.CutoverUs = (m.endAt - m.cutoverAt).Microseconds()
				rep.MigrateFrozenUs += mr.FrozenUs
				rep.MigrateCutoverUs += mr.CutoverUs
			}
		}
		switch {
		case m.finished:
			rep.MovesCompleted++
		case m.skipped:
			rep.MovesSkipped++
		case m.aborted:
			rep.MovesAborted++
		}
		rep.MoveReports = append(rep.MoveReports, mr)
	}

	for _, nd := range f.nodes {
		rep.SnapshotReads += nd.snapshotReads
		rep.SnapshotEffective += nd.snapshotEffective
		rep.SnapshotStale += nd.snapshotStale
		rep.Nodes = append(rep.Nodes, NodeReport{
			Node: nd.idx, Shard: nd.shard, Replica: nd.replica, Role: nd.state.String(),
			Accepted:          nd.accepted,
			Refused:           nd.refused,
			Kills:             nd.kills,
			RecoveryUs:        nd.recoveryTotal.Microseconds(),
			PhoenixRestarts:   nd.h.Stat.PhoenixRestarts,
			OtherRestarts:     nd.h.Stat.OtherRestarts,
			Checkpoints:       nd.h.Stat.CheckpointsTaken,
			SnapshotReads:     nd.snapshotReads,
			SnapshotEffective: nd.snapshotEffective,
			SnapshotStale:     nd.snapshotStale,
			Counters:          nd.h.M.Counters.Snapshot(),
		})
	}
	return rep
}
