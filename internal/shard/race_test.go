package shard_test

// Race-hammer for the sharded fabric: each run is single-threaded by design
// (one simclock drives the router, the open-loop frontend, node recovery,
// and the migration state machines), so the concurrency hazard worth hunting
// is shared package state — a stray global in the ring, router, kernel
// migration, or app layers that two independent fabrics would stomp. This
// test runs full sharded runs concurrently under -race with kills, moves,
// and ring changes all active, requires same-seed runs to stay
// byte-identical even while racing each other, and checks no goroutine
// outlives the runs.

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"phoenix/internal/recovery"
	"phoenix/internal/shard"
)

func hammerOnce(t *testing.T, seed int64) shard.Report {
	t.Helper()
	cfg, mk, _ := smokeConfig(seed, recovery.ModePhoenix)
	d := cfg.Profile.RunFor
	// Kill-and-rebalance heavy: every shard is either killed or moved.
	sched := shard.Schedule{
		Kills: []shard.Kill{
			{At: d / 4, Shard: 0, Replica: 0},
			{At: d / 3, Shard: 1, Replica: 1},
			{At: d / 2, Shard: 2, Replica: 0},
		},
		Moves:       []shard.Move{{At: d * 2 / 5, Shard: 3, Replica: 1}},
		RingChanges: []shard.RingChange{{At: d * 3 / 5, Shard: 1}},
	}
	rep, err := shard.Run(cfg, mk, sched)
	if err != nil {
		t.Errorf("seed %d: %v", seed, err)
		return shard.Report{}
	}
	return rep
}

func TestShardRaceHammer(t *testing.T) {
	before := runtime.NumGoroutine()

	// 3 seeds × 2 concurrent runs each: the duplicate pairs double as a
	// determinism check under contention.
	const seedCount, dup = 3, 2
	reports := make([]shard.Report, seedCount*dup)
	var wg sync.WaitGroup
	for i := range reports {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i] = hammerOnce(t, int64(i%seedCount)+1)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for s := 0; s < seedCount; s++ {
		a, b := reports[s], reports[s+seedCount]
		ja, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		jb, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("seed %d: concurrent same-seed runs diverged:\n%s\n%s", s+1, ja, jb)
		}
		if a.Kills != 3 || a.Requests == 0 {
			t.Fatalf("seed %d: hammer run exercised nothing: %s", s+1, a)
		}
		if a.MovesCompleted == 0 {
			t.Fatalf("seed %d: no move completed under the hammer schedule: %s", s+1, a)
		}
		if a.NonOwnerServes != 0 || a.LostAcked != 0 {
			t.Fatalf("seed %d: oracle violation under the hammer schedule: %s", s+1, a)
		}
	}

	// Goroutine-leak check: nothing the runs started may outlive them. A few
	// settle retries tolerate runtime-internal goroutines winding down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
