package shard

import (
	"bytes"
	"fmt"

	"phoenix/internal/recovery"
)

// This file implements the sharded availability campaign: for each
// registered application, replay the identical kill-and-rebalance schedule
// (replica kills, live shard moves, a ring change) against a PHOENIX fabric,
// a builtin-recovery fabric, and a vanilla fabric under the same open-loop
// client population, and check the sharded serving contract — no key is ever
// served by a non-owner, no acknowledged write is lost across a migration,
// PHOENIX's availability strictly exceeds vanilla's, its preserve-riding
// migrations freeze the shard for less time than stop-and-copy, and the
// whole run is a deterministic replay (same seed → byte-identical report).

// System pairs an application factory with its shard workload profile. The
// campaign's caller wires these from the app registry; the shard package
// cannot import the registry itself (the registry depends on this package
// for the profile type).
type System struct {
	Name    string
	Factory recovery.AppFactory
	Profile Profile
}

// Options parameterises CheckShard.
type Options struct {
	// Seed drives every run (default 1).
	Seed int64
	// Shards/Replicas/Spares shape the fabric (defaults 4/2/2).
	Shards   int
	Replicas int
	Spares   int
}

// Result holds one system's three mode reports.
type Result struct {
	System  string `json:"system"`
	Phoenix Report `json:"phoenix"`
	Builtin Report `json:"builtin"`
	Vanilla Report `json:"vanilla"`
}

// CheckShard runs the campaign for the given systems and returns the first
// contract violation found.
func CheckShard(systems []System, o Options) ([]Result, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Spares <= 0 {
		o.Spares = 2
	}
	var results []Result
	for _, sys := range systems {
		res, err := checkSystem(sys, o)
		results = append(results, res)
		if err != nil {
			return results, fmt.Errorf("shard campaign: %s: %w", sys.Name, err)
		}
	}
	return results, nil
}

func checkSystem(sys System, o Options) (Result, error) {
	sys.Profile.fill()
	sched := DefaultSchedule(sys.Profile, o.Shards, o.Replicas)
	run := func(rcfg recovery.Config) (Report, error) {
		cfg := Config{
			System:   sys.Name,
			Shards:   o.Shards,
			Replicas: o.Replicas,
			Spares:   o.Spares,
			Seed:     o.Seed,
			Recovery: rcfg,
			Profile:  sys.Profile,
		}
		return Run(cfg, sys.Factory, sched)
	}

	res := Result{System: sys.Name}
	ci := sys.Profile.CheckpointInterval
	var err error
	if res.Phoenix, err = run(recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: ci}); err != nil {
		return res, err
	}
	// Determinism: the identical configuration must replay byte-for-byte.
	rerun, err := run(recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: ci})
	if err != nil {
		return res, err
	}
	j1, err := res.Phoenix.JSON()
	if err != nil {
		return res, err
	}
	j2, err := rerun.JSON()
	if err != nil {
		return res, err
	}
	if !bytes.Equal(j1, j2) {
		return res, fmt.Errorf("same-seed reruns diverged:\n%s\n%s", j1, j2)
	}
	if res.Builtin, err = run(recovery.Config{Mode: recovery.ModeBuiltin, CheckpointInterval: ci}); err != nil {
		return res, err
	}
	if res.Vanilla, err = run(recovery.Config{Mode: recovery.ModeVanilla}); err != nil {
		return res, err
	}

	p, b, v := res.Phoenix, res.Builtin, res.Vanilla
	switch {
	case p.Requests == 0 || b.Requests == 0 || v.Requests == 0:
		return res, fmt.Errorf("a mode served no traffic (phoenix=%d builtin=%d vanilla=%d requests)",
			p.Requests, b.Requests, v.Requests)
	case p.Kills == 0:
		return res, fmt.Errorf("schedule killed nothing — the campaign exercised no recovery")
	case p.MovesCompleted == 0:
		return res, fmt.Errorf("PHOENIX completed no shard moves — the campaign exercised no migration")
	case v.MovesCompleted == 0:
		return res, fmt.Errorf("vanilla completed no shard moves — no stop-and-copy baseline to compare against")
	case p.AvailabilityPct <= v.AvailabilityPct:
		return res, fmt.Errorf("PHOENIX availability %.3f%% does not strictly exceed vanilla %.3f%%\n  phoenix: %s\n  vanilla: %s",
			p.AvailabilityPct, v.AvailabilityPct, p, v)
	case p.MigrateCutoverUs >= v.MigrateCutoverUs:
		// The cutover (final ship + install + adopting boot) is the
		// drain-free part of the freeze: its cost is a pure function of what
		// still had to move, so preserve-riding delta rounds must beat
		// stop-and-copy here. (The full frozen window additionally includes
		// the traffic-dependent drain wait, which is mode-independent noise.)
		return res, fmt.Errorf("PHOENIX migration cutover %dµs not shorter than vanilla stop-and-copy %dµs — preserve-riding delta rounds bought nothing",
			p.MigrateCutoverUs, v.MigrateCutoverUs)
	case p.Unrecovered > 0:
		return res, fmt.Errorf("PHOENIX left %d kill(s) unrecovered to effective service", p.Unrecovered)
	}
	for _, rep := range []Report{p, b, v} {
		if rep.NonOwnerServes != 0 {
			return res, fmt.Errorf("%s: %d request(s) served by a non-owner across ownership flips", rep.Mode, rep.NonOwnerServes)
		}
		if rep.LostAcked != 0 {
			return res, fmt.Errorf("%s: %d acknowledged write(s) lost across migration (keys %v)", rep.Mode, rep.LostAcked, rep.LostKeys)
		}
		if rep.LedgerChecked == 0 {
			return res, fmt.Errorf("%s: lost-write oracle audited nothing — no acked writes landed on migrated shards", rep.Mode)
		}
	}
	return res, nil
}

// FmtComparison renders one result as the availability table the campaign
// and the figshard experiment print.
func FmtComparison(res Result) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s (shards=%d×%d, clients=%d, kills=%d, moves=%d)\n",
		res.System, res.Phoenix.Shards, res.Phoenix.Replicas, res.Phoenix.Population,
		res.Phoenix.Kills, res.Phoenix.Moves+res.Phoenix.RingChanges)
	fmt.Fprintf(&buf, "  %-8s %10s %8s %8s %8s %12s %10s %6s\n",
		"mode", "avail", "p50", "p99", "p999", "unavail", "cutover", "fail")
	for _, rep := range []Report{res.Phoenix, res.Builtin, res.Vanilla} {
		fmt.Fprintf(&buf, "  %-8s %9.3f%% %7dµs %7dµs %7dµs %11dµs %9dµs %6d\n",
			rep.Mode, rep.AvailabilityPct, rep.P50Us, rep.P99Us, rep.P999Us,
			rep.UnavailTotalUs, rep.MigrateCutoverUs, rep.Failed)
	}
	return buf.String()
}
