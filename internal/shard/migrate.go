package shard

import (
	"fmt"
	"time"

	"phoenix/internal/kernel"
)

// migration orchestrates one live shard move over kernel.Migration: in
// PHOENIX mode, background delta rounds run while the shard keeps serving,
// converging to the write rate; the shard's traffic is then frozen, drained,
// and cut over — the freeze covers only the final dirty delta. Non-PHOENIX
// modes have no preservation to ride, so the move degrades to stop-and-copy:
// freeze first, ship everything inside the window. Both paths flip the
// placement under the freeze and retire the source, so ownership is always
// single and every routed request lands on an owner.
type migration struct {
	f       *Fabric
	shard   int
	replica int
	reason  string
	srcNode int
	dstNode int

	mig *kernel.Migration

	rounds     []roundRec
	finalDelta int
	pages      int

	startAt   time.Duration
	freezeAt  time.Duration
	cutoverAt time.Duration
	endAt     time.Duration

	waitingDrain bool
	frozen       bool
	finished     bool
	aborted      bool
	skipped      bool
	skipReason   string
	retries      int
}

type roundRec struct {
	scanned, hashed, shipped int
	cost                     time.Duration
}

// startMove begins relocating one shard replica to the next free spare. A
// busy shard or an exhausted spare pool records a skipped move (visible in
// the report) instead of failing the run; a temporarily-down source retries
// until it recovers or the traffic window closes.
func (f *Fabric) startMove(s, r int, reason string) {
	m := &migration{f: f, shard: s, replica: r, reason: reason, startAt: f.clk.Now(), dstNode: -1}
	if f.activeShard[s] != nil {
		m.skipped, m.skipReason = true, "shard already migrating"
		f.migrations = append(f.migrations, m)
		return
	}
	if len(f.spares) == 0 {
		m.skipped, m.skipReason = true, "no spare available"
		f.migrations = append(f.migrations, m)
		return
	}
	src := f.nodes[f.router.placement[s][r]]
	if src.state != stateServing {
		// The source is down (mid-recovery): retry shortly instead of
		// migrating a dead process. Give up when the traffic window ends.
		if f.clk.Now() >= f.deadline {
			m.skipped, m.skipReason = true, "source down until window end"
			f.migrations = append(f.migrations, m)
			return
		}
		f.clk.AfterFunc(time.Millisecond, func() { f.startMove(s, r, reason) })
		return
	}
	m.srcNode = src.idx
	m.dstNode = f.spares[0]
	f.spares = f.spares[1:]
	dst := f.nodes[m.dstNode]

	h := src.h
	resolve := func() (kernel.ExecSpec, error) {
		plan, fb := h.App.PlanRestart(h.Runtime(), nil, false)
		if fb != "" {
			return kernel.ExecSpec{}, fmt.Errorf("restart plan refused: %s", fb)
		}
		return h.Runtime().ResolveSpec(plan)
	}
	kmig, err := kernel.StartMigration(h.Proc(), dst.h.M, resolve)
	if err != nil {
		f.fail(fmt.Errorf("shard: start migration %d/%d: %w", s, r, err))
		return
	}
	m.mig = kmig
	f.migrations = append(f.migrations, m)
	f.activeShard[s] = m
	f.activeSrc[m.srcNode] = m

	if f.phoenixMode() {
		m.deltaRound()
	} else {
		m.beginFreeze()
	}
}

// deltaRound runs one background copy round on the source's clock, mirrors
// its cost onto the fabric clock, and either converges into the freeze or
// schedules the next round after a gap of live traffic.
func (m *migration) deltaRound() {
	if m.aborted {
		return
	}
	f := m.f
	src := f.nodes[m.srcNode]
	src.syncClock()
	st, err := m.mig.DeltaRound()
	if err != nil {
		m.abort(fmt.Sprintf("delta round: %v", err))
		return
	}
	m.rounds = append(m.rounds, roundRec{st.Scanned, st.Hashed, st.Shipped, st.Cost})
	converged := len(m.rounds) >= 2 && st.Shipped <= f.cfg.MigrationConvergePages
	maxed := len(m.rounds) >= f.cfg.MigrationMaxRounds
	f.clk.AfterFunc(st.Cost, func() {
		if m.aborted {
			return
		}
		if converged || maxed {
			m.beginFreeze()
			return
		}
		f.clk.AfterFunc(f.cfg.MigrationRoundGap, m.deltaRound)
	})
}

// beginFreeze holds the shard's traffic and waits for every in-flight
// dispatch to its replica group to drain; the drain completes via
// pokeMigrations on the responses (or on a killed group member's forgotten
// queue).
func (m *migration) beginFreeze() {
	if m.aborted {
		return
	}
	m.frozen = true
	m.waitingDrain = true
	m.freezeAt = m.f.clk.Now()
	m.f.router.freeze(m.shard)
	m.tryCutover()
}

// pokeMigrations re-checks every frozen migration's drain condition, in
// shard order — map iteration would let two same-instant cutovers register
// their timers in nondeterministic order.
func (f *Fabric) pokeMigrations() {
	for s := 0; s < f.cfg.Shards; s++ {
		if m := f.activeShard[s]; m != nil && m.waitingDrain {
			m.tryCutover()
		}
	}
}

func (m *migration) tryCutover() {
	if m.aborted || !m.waitingDrain || m.f.router.groupInflight(m.shard) > 0 {
		return
	}
	m.waitingDrain = false
	m.cutover()
}

// cutover performs the final delta ship and successor construction on the
// kernel, hands the preserved process to the destination harness, and
// mirrors both machines' costs onto the fabric clock before flipping
// ownership. The two are summed, not maxed: the final ship on the source,
// the page install on the destination, and the adopting boot run as a
// serial pipeline — nothing overlaps inside the blackout.
func (m *migration) cutover() {
	f := m.f
	m.cutoverAt = f.clk.Now()
	src, dst := f.nodes[m.srcNode], f.nodes[m.dstNode]
	src.syncClock()
	dst.syncClock()
	srcBefore := src.h.M.Clock.Now()
	dstBefore := dst.h.M.Clock.Now()

	np, st, err := m.mig.Cutover()
	if err != nil {
		m.abort(fmt.Sprintf("cutover: %v", err))
		return
	}
	m.finalDelta = st.Shipped
	m.pages = st.Scanned
	if err := dst.h.AdoptPreserved(np); err != nil {
		f.fail(fmt.Errorf("shard: node %d adopt shard %d: %w", m.dstNode, m.shard, err))
		return
	}

	// The move is committed: the kernel killed the source process when the
	// successor was built (single-owner invariant). Retire the source node
	// now, not at finish — a scheduled kill resolving to it inside the
	// blackout would otherwise drive recovery on a dead process — and stop
	// tracking it as an abortable source.
	delete(f.activeSrc, m.srcNode)
	src.retire()

	srcD := src.h.M.Clock.Now() - srcBefore
	dstD := dst.h.M.Clock.Now() - dstBefore
	f.clk.AfterFunc(srcD+dstD, m.finish)
}

// finish flips placement to the destination (the source retired at cutover
// commit) and releases the shard's traffic against the new owner.
func (m *migration) finish() {
	f := m.f
	m.endAt = f.clk.Now()
	m.finished = true
	f.migrated[m.shard] = true

	f.router.flip(m.shard, m.replica, m.dstNode)
	dst := f.nodes[m.dstNode]
	dst.state = stateServing
	dst.shard, dst.replica = m.shard, m.replica

	delete(f.activeShard, m.shard)
	m.frozen = false
	f.router.unfreeze(m.shard)
}

// abort abandons the move: buffered pages are discarded, the untouched
// spare returns to the pool, and a frozen shard resumes against its
// original owner.
func (m *migration) abort(reason string) {
	if m.aborted || m.finished {
		return
	}
	m.aborted = true
	m.skipReason = reason
	m.endAt = m.f.clk.Now()
	if m.mig != nil {
		m.mig.Abort()
	}
	f := m.f
	delete(f.activeShard, m.shard)
	delete(f.activeSrc, m.srcNode)
	if m.dstNode >= 0 {
		f.spares = append(f.spares, m.dstNode)
	}
	if m.frozen {
		m.frozen = false
		m.waitingDrain = false
		f.router.unfreeze(m.shard)
	}
}

// abortMigrationsFrom aborts any migration sourcing from a node that is
// about to die — its buffered baseline dies with the process.
func (f *Fabric) abortMigrationsFrom(nodeIdx int, reason string) {
	if m, ok := f.activeSrc[nodeIdx]; ok {
		m.abort(reason)
	}
}
