package shard_test

import (
	"fmt"
	"testing"
	"time"

	"phoenix/internal/apps/kvstore"
	"phoenix/internal/cluster"
	"phoenix/internal/faultinject"
	"phoenix/internal/recovery"
	"phoenix/internal/shard"
	"phoenix/internal/workload"
)

// TestPerShardKillWindowSmallerThanWholeReplica is the sharding dividend:
// the same application, seed, and dataset, killed at the same instant under
// PHOENIX, must reopen faster when the victim owns one shard's arc than
// when it owns the whole replicated keyspace. The state-dependent parts of
// recovery — the preserve scan and checksum walk over the heap, the
// mark-and-sweep cleanup over live records — scale with what the node
// holds, and a 4-shard fabric gives each node a quarter of it. The dataset
// is sized (16 MiB of values) so that margin dwarfs the shared fixed costs
// (PhoenixBootCost, probe rediscovery) and scheduling jitter.
func TestPerShardKillWindowSmallerThanWholeReplica(t *testing.T) {
	const (
		records   = 4096
		valueSize = 4096
		seed      = 11
		shards    = 4
		replicas  = 2
	)
	killAt := 50 * time.Millisecond
	runFor := 250 * time.Millisecond

	mk := func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
		kv := kvstore.New(kvstore.Config{Cleanup: true}, inj)
		gen := workload.NewYCSB(workload.YCSBConfig{
			Seed: seed, Records: records, ReadFrac: 0.9, InsertFrac: 0.02,
			ValueSize: valueSize, ZipfianKeys: true,
		})
		return kv, gen
	}
	var warm []*workload.Request
	for i := uint64(0); i < records; i++ {
		key := fmt.Sprintf("user%010d", i)
		warm = append(warm, &workload.Request{
			Seq: i + 1, Op: workload.OpInsert, Key: key,
			Value: workload.Value(key, 1, valueSize),
		})
	}
	proto := workload.NewYCSB(workload.YCSBConfig{
		Seed: seed, Records: records, ReadFrac: 0.9, InsertFrac: 0.02,
		ValueSize: valueSize, ZipfianKeys: true,
	})
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: 2 * time.Millisecond}

	// Whole-replica tier: every node warms (and on a kill, preserves) all
	// records.
	crep, err := cluster.Run(cluster.Config{
		System:   "kvstore",
		Replicas: replicas,
		Seed:     seed,
		Recovery: rcfg,
		Profile:  cluster.Profile{Proto: proto, Warm: warm, RunFor: runFor},
	}, mk, cluster.Schedule{Kills: []cluster.Kill{{At: killAt, Node: 0}}})
	if err != nil {
		t.Fatal(err)
	}

	// Sharded fabric: node 0 (shard 0, replica 0) warms only shard 0's arc.
	srep, err := shard.Run(shard.Config{
		System:   "kvstore",
		Shards:   shards,
		Replicas: replicas,
		Seed:     seed,
		Recovery: rcfg,
		Profile:  shard.Profile{Proto: proto, Warm: warm, RunFor: runFor},
	}, mk, shard.Schedule{Kills: []shard.Kill{{At: killAt, Shard: 0, Replica: 0}}})
	if err != nil {
		t.Fatal(err)
	}

	if len(crep.Windows) != 1 || !crep.Windows[0].Closed {
		t.Fatalf("cluster run: want one closed kill window, got %+v", crep.Windows)
	}
	if len(srep.Windows) != 1 || !srep.Windows[0].Closed {
		t.Fatalf("shard run: want one closed kill window, got %+v", srep.Windows)
	}
	cw, sw := crep.Windows[0], srep.Windows[0]
	t.Logf("whole-replica window %dµs, per-shard window %dµs", cw.DurUs, sw.DurUs)
	if sw.DurUs >= cw.DurUs {
		t.Fatalf("per-shard kill window %dµs not smaller than whole-replica window %dµs",
			sw.DurUs, cw.DurUs)
	}
}
