package shard_test

import (
	"testing"
	"time"

	"phoenix/internal/apps/registry"
	"phoenix/internal/recovery"
	"phoenix/internal/shard"
)

func smokeConfig(seed int64, mode recovery.Mode) (shard.Config, recovery.AppFactory, shard.Schedule) {
	prof := registry.ShardProfile("kvstore", seed)
	prof.RunFor = 120 * time.Millisecond
	cfg := shard.Config{
		System:   "kvstore",
		Shards:   4,
		Replicas: 2,
		Spares:   2,
		Seed:     seed,
		Recovery: recovery.Config{Mode: mode, CheckpointInterval: 2 * time.Millisecond},
		Profile:  prof,
	}
	sched := shard.DefaultSchedule(cfg.Profile, cfg.Shards, cfg.Replicas)
	return cfg, registry.Factories(seed)["kvstore"], sched
}

// TestFabricSmoke drives one PHOENIX fabric through the default schedule and
// checks the basic shape of the run: traffic flowed, the kills recovered,
// the moves completed, and the two inline oracles stayed quiet.
func TestFabricSmoke(t *testing.T) {
	cfg, mk, sched := smokeConfig(7, recovery.ModePhoenix)
	rep, err := shard.Run(cfg, mk, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", rep)
	if rep.Requests == 0 || rep.Served == 0 {
		t.Fatalf("no traffic served: %s", rep)
	}
	if rep.Kills != len(sched.Kills) {
		t.Fatalf("kills = %d, want %d", rep.Kills, len(sched.Kills))
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("PHOENIX left %d kill(s) unrecovered: %s", rep.Unrecovered, rep)
	}
	if rep.MovesCompleted == 0 {
		t.Fatalf("no shard move completed (skipped=%d aborted=%d): %+v",
			rep.MovesSkipped, rep.MovesAborted, rep.MoveReports)
	}
	if rep.NonOwnerServes != 0 {
		t.Fatalf("%d non-owner serves", rep.NonOwnerServes)
	}
	if rep.LostAcked != 0 {
		t.Fatalf("%d acked writes lost (keys %v)", rep.LostAcked, rep.LostKeys)
	}
	if rep.LedgerChecked == 0 {
		t.Fatal("lost-write oracle audited nothing")
	}
	for _, mr := range rep.MoveReports {
		if mr.Completed && len(mr.Rounds) == 0 {
			t.Fatalf("PHOENIX move %d/%d completed without background delta rounds", mr.Shard, mr.Replica)
		}
	}
}

// TestFabricSmokeVanilla checks the stop-and-copy degradation: completed
// moves ship everything inside the freeze (no background rounds) and the
// frozen window exceeds the PHOENIX one for the same schedule and seed.
func TestFabricSmokeVanilla(t *testing.T) {
	pcfg, mk, sched := smokeConfig(7, recovery.ModePhoenix)
	prep, err := shard.Run(pcfg, mk, sched)
	if err != nil {
		t.Fatal(err)
	}
	vcfg, mk, _ := smokeConfig(7, recovery.ModeVanilla)
	vrep, err := shard.Run(vcfg, mk, sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("phoenix: %s", prep)
	t.Logf("vanilla: %s", vrep)
	if vrep.MovesCompleted == 0 {
		t.Fatalf("vanilla completed no moves: %+v", vrep.MoveReports)
	}
	for _, mr := range vrep.MoveReports {
		if mr.Completed && len(mr.Rounds) != 0 {
			t.Fatalf("vanilla move %d/%d ran %d background rounds", mr.Shard, mr.Replica, len(mr.Rounds))
		}
	}
	if prep.MigrateCutoverUs >= vrep.MigrateCutoverUs {
		t.Fatalf("PHOENIX cutover %dµs not shorter than vanilla stop-and-copy %dµs",
			prep.MigrateCutoverUs, vrep.MigrateCutoverUs)
	}
	if prep.AvailabilityPct <= vrep.AvailabilityPct {
		t.Fatalf("PHOENIX availability %.3f%% not above vanilla %.3f%%",
			prep.AvailabilityPct, vrep.AvailabilityPct)
	}
}
