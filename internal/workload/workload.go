// Package workload provides the deterministic workload generators the
// paper's evaluation uses: a YCSB-like read/insert mix with Zipfian key
// popularity (Redis, §4.3.3), a sequential-fill benchmark (LevelDB), and a
// Web-Polygraph-like web trace with exponentially distributed page sizes and
// 80% cacheable content (Varnish/Squid).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Op is a request operation type.
type Op uint8

const (
	// OpRead fetches a key.
	OpRead Op = iota
	// OpInsert writes a new key.
	OpInsert
	// OpUpdate overwrites an existing key.
	OpUpdate
	// OpDelete removes a key.
	OpDelete
	// OpWebGet fetches a URL through a cache.
	OpWebGet
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpWebGet:
		return "GET"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Request is one generated operation.
type Request struct {
	Seq   uint64
	Op    Op
	Key   string
	Value []byte
	// Size is the object size for web requests (the backend's page size).
	Size int
	// Cacheable marks web objects the cache may store.
	Cacheable bool
}

// Generator produces a deterministic request stream.
type Generator interface {
	// Next returns the next request. The same seed yields the same stream.
	Next() *Request
	// Clone returns an independent generator of the same shape, rewound to
	// the start of its stream and re-seeded with seed: two clones with the
	// same seed emit identical streams, and (for seeded generators) clones
	// with distinct seeds emit distinct streams. It clones the generator as
	// configured, not its current cursor — each simulated client in a
	// cluster run gets its own clone and replays from request one.
	Clone(seed int64) Generator
}

// --- Zipfian key chooser ---

// Zipf draws integers in [0, n) with Zipfian popularity (s ≈ 0.99, the YCSB
// default). It uses the rejection-inversion method from Go's rand.Zipf,
// wrapped so key 0 is the most popular.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipfian chooser over n items using rng. The exponent is
// slightly above YCSB's 0.99 (rand.Zipf requires s > 1).
func NewZipf(rng *rand.Rand, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(rng, 1.07, 1.0, n-1)}
}

// Next draws a key index.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// --- YCSB-like KV workload ---

// YCSBConfig parameterises the KV generator.
type YCSBConfig struct {
	Seed        int64
	Records     uint64  // initial key-space size
	ReadFrac    float64 // fraction of reads (e.g. 0.9)
	InsertFrac  float64 // fraction of inserts (e.g. 0.1)
	UpdateFrac  float64 // remainder after read+insert goes to updates
	ValueSize   int     // payload bytes per value
	ZipfianKeys bool    // Zipfian (default) vs uniform key popularity
}

// YCSB is the KV request generator.
type YCSB struct {
	cfg      YCSBConfig
	rng      *rand.Rand
	zipf     *Zipf
	inserted uint64
	seq      uint64
}

// NewYCSB builds the generator.
func NewYCSB(cfg YCSBConfig) *YCSB {
	if cfg.Records == 0 {
		cfg.Records = 1000
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &YCSB{cfg: cfg, rng: rng, inserted: cfg.Records}
	if cfg.ZipfianKeys {
		g.zipf = NewZipf(rng, cfg.Records)
	}
	return g
}

// LoadKeys returns the initial dataset keys (key-%010d naming, YCSB style).
func (g *YCSB) LoadKeys() []string {
	out := make([]string, g.cfg.Records)
	for i := range out {
		out[i] = ycsbKey(uint64(i))
	}
	return out
}

func ycsbKey(i uint64) string { return fmt.Sprintf("user%010d", i) }

// Clone implements Generator: a fresh YCSB stream over the same mix and
// key-space parameters, driven by seed.
func (g *YCSB) Clone(seed int64) Generator {
	cfg := g.cfg
	cfg.Seed = seed
	return NewYCSB(cfg)
}

// Value deterministically derives a record's payload from its key and a
// version, so end-to-end validation can recompute expected values.
func Value(key string, version uint64, size int) []byte {
	v := make([]byte, size)
	seed := uint64(14695981039346656037)
	for _, ch := range []byte(key) {
		seed = (seed ^ uint64(ch)) * 1099511628211
	}
	seed ^= version * 0x9E3779B97F4A7C15
	for i := range v {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		v[i] = byte('a' + seed%26)
	}
	return v
}

func (g *YCSB) chooseExisting() uint64 {
	if g.zipf != nil {
		// Scrambled Zipfian, as in YCSB: the popularity rank is hashed
		// across the (growing) keyspace, so newly inserted records can be
		// popular. This is what makes post-loss warm-up gradual — hit rate
		// recovers roughly in proportion to the re-inserted fraction.
		rank := g.zipf.Next()
		x := rank*0x9E3779B97F4A7C15 + 0x1D8E4E27C47D124F
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		return x % g.inserted
	}
	return uint64(g.rng.Int63n(int64(g.inserted)))
}

// Next returns the next KV request.
func (g *YCSB) Next() *Request {
	g.seq++
	r := g.rng.Float64()
	switch {
	case r < g.cfg.ReadFrac:
		return &Request{Seq: g.seq, Op: OpRead, Key: ycsbKey(g.chooseExisting())}
	case r < g.cfg.ReadFrac+g.cfg.InsertFrac:
		k := g.inserted
		g.inserted++
		key := ycsbKey(k)
		return &Request{Seq: g.seq, Op: OpInsert, Key: key, Value: Value(key, 1, g.cfg.ValueSize)}
	default:
		k := g.chooseExisting()
		key := ycsbKey(k)
		return &Request{Seq: g.seq, Op: OpUpdate, Key: key, Value: Value(key, g.seq, g.cfg.ValueSize)}
	}
}

// --- Sequential fill (LevelDB fillseq) ---

// FillSeq emits sequential inserts with fixed-size values, LevelDB's fillseq
// benchmark.
type FillSeq struct {
	next      uint64
	valueSize int
	seq       uint64
}

// NewFillSeq builds the generator.
func NewFillSeq(valueSize int) *FillSeq {
	if valueSize == 0 {
		valueSize = 100
	}
	return &FillSeq{valueSize: valueSize}
}

// Clone implements Generator. FillSeq has no randomness, so the seed instead
// offsets the key space (seed<<32): clones with distinct seeds fill disjoint
// key ranges, which is what independent clients of a shared store need.
func (g *FillSeq) Clone(seed int64) Generator {
	ng := NewFillSeq(g.valueSize)
	ng.next = uint64(seed) << 32
	return ng
}

// Next returns the next sequential insert.
func (g *FillSeq) Next() *Request {
	g.seq++
	key := fmt.Sprintf("%016d", g.next)
	g.next++
	return &Request{Seq: g.seq, Op: OpInsert, Key: key, Value: Value(key, 1, g.valueSize)}
}

// --- Web-Polygraph-like cache workload ---

// WebConfig parameterises the web trace.
type WebConfig struct {
	Seed int64
	// URLs is the number of distinct objects in the population.
	URLs uint64
	// MeanSize is the mean of the exponential page-size distribution.
	MeanSize int
	// CacheableFrac is the fraction of objects the cache may store (0.8 in
	// the paper's setup).
	CacheableFrac float64
}

// Web generates cache GETs with Zipfian URL popularity.
type Web struct {
	cfg  WebConfig
	rng  *rand.Rand
	zipf *Zipf
	seq  uint64
}

// NewWeb builds the generator.
func NewWeb(cfg WebConfig) *Web {
	if cfg.URLs == 0 {
		cfg.URLs = 10000
	}
	if cfg.MeanSize == 0 {
		cfg.MeanSize = 8 << 10
	}
	if cfg.CacheableFrac == 0 {
		cfg.CacheableFrac = 0.8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Web{cfg: cfg, rng: rng, zipf: NewZipf(rng, cfg.URLs)}
}

// Clone implements Generator: a fresh web trace over the same URL population
// (object sizes and cacheability are derived from object ids, so clones agree
// with every other generator built from the same WebConfig).
func (w *Web) Clone(seed int64) Generator {
	cfg := w.cfg
	cfg.Seed = seed
	return NewWeb(cfg)
}

// ObjectSize returns the deterministic size of object i: exponentially
// distributed across the population, derived from the object id so backends
// and validators agree without shared state.
func (w *Web) ObjectSize(i uint64) int {
	// Hash the id into (0,1), invert the exponential CDF.
	x := i*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	u := (float64(x>>11) + 1) / (1 << 53)
	size := int(-math.Log(u) * float64(w.cfg.MeanSize))
	if size < 64 {
		size = 64
	}
	return size
}

// Cacheable reports whether object i may be cached (deterministic per id).
func (w *Web) Cacheable(i uint64) bool {
	x := i*0xD6E8FEB86659FD93 + 7
	x ^= x >> 32
	return float64(x%10000)/10000.0 < w.cfg.CacheableFrac
}

// URLOf formats the object id as a URL key.
func URLOf(i uint64) string { return fmt.Sprintf("/obj/%08d", i) }

// Next returns the next web GET.
func (w *Web) Next() *Request {
	w.seq++
	i := w.zipf.Next()
	return &Request{
		Seq:       w.seq,
		Op:        OpWebGet,
		Key:       URLOf(i),
		Size:      w.ObjectSize(i),
		Cacheable: w.Cacheable(i),
	}
}
