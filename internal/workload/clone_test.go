package workload

import "testing"

// reqTuple is the comparable projection of a Request; payloads derive from
// Key+Seq, so comparing them is redundant (and []byte is not comparable).
type reqTuple struct {
	Seq  uint64
	Op   Op
	Key  string
	Size int
}

// drain materialises the first n requests of a generator as comparable
// tuples.
func drain(g Generator, n int) []reqTuple {
	out := make([]reqTuple, 0, n)
	for i := 0; i < n; i++ {
		r := g.Next()
		out = append(out, reqTuple{Seq: r.Seq, Op: r.Op, Key: r.Key, Size: len(r.Value)})
	}
	return out
}

func streamsEqual(a, b []reqTuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCloneDeterminism proves the Clone contract for every workload
// generator: same seed → identical streams, distinct seeds → distinct
// streams (for generators where the seed enters the stream at all).
func TestCloneDeterminism(t *testing.T) {
	const n = 200
	cases := []struct {
		name string
		mk   func() Generator
		// seeded reports whether distinct seeds must produce distinct
		// streams. FillSeq maps the seed to a key-space offset, so it is
		// seeded in that sense too.
		seeded bool
	}{
		{"ycsb-zipf", func() Generator {
			return NewYCSB(YCSBConfig{Seed: 1, Records: 100, ReadFrac: 0.6, InsertFrac: 0.2, ZipfianKeys: true})
		}, true},
		{"ycsb-uniform", func() Generator {
			return NewYCSB(YCSBConfig{Seed: 1, Records: 100, ReadFrac: 0.5, InsertFrac: 0.1})
		}, true},
		{"fillseq", func() Generator { return NewFillSeq(32) }, true},
		{"web", func() Generator {
			return NewWeb(WebConfig{Seed: 1, URLs: 500, MeanSize: 4 << 10})
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			proto := tc.mk()
			// Advance the prototype so the clones demonstrably rewind to the
			// start of the stream rather than splitting the cursor.
			proto.Next()
			proto.Next()

			a := drain(proto.Clone(7), n)
			b := drain(proto.Clone(7), n)
			if !streamsEqual(a, b) {
				t.Fatalf("clones with the same seed diverged")
			}
			c := drain(proto.Clone(8), n)
			if tc.seeded && streamsEqual(a, c) {
				t.Fatalf("clones with distinct seeds emitted identical streams")
			}
			// A clone's clone behaves like a first-generation clone.
			d := drain(proto.Clone(8).Clone(7), n)
			if !streamsEqual(a, d) {
				t.Fatalf("re-cloning did not rewind to the seed-7 stream")
			}
		})
	}
}

// TestFillSeqCloneDisjointKeys pins the documented FillSeq behaviour: clones
// with distinct seeds fill disjoint key ranges.
func TestFillSeqCloneDisjointKeys(t *testing.T) {
	g := NewFillSeq(16)
	a, b := g.Clone(1), g.Clone(2)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[a.Next().Key] = true
	}
	for i := 0; i < 100; i++ {
		if k := b.Next().Key; seen[k] {
			t.Fatalf("key %s appears in both clone streams", k)
		}
	}
}
