package workload

import (
	"math"
	"math/rand"
	"time"
)

// OpenLoop is a deterministic open-loop arrival process: request arrival
// times are drawn from an exponential inter-arrival distribution (a
// Poisson process) against the simulated clock, independent of when earlier
// requests complete. That is the property closed-loop clients lack — a slow
// or dead shard cannot slow the offered load down, so unavailability shows
// up as queueing and timeouts instead of politely paced retries. Each
// arrival is attributed to one of Population logical clients, which is how
// a campaign simulates millions of users with a handful of integers.
//
// Determinism: the stream is a pure function of the seed. Inter-arrival
// draws are quantized to integer nanoseconds (floored at 1ns so time always
// advances), and the clock argument is the simulation clock, never the wall
// clock.
type OpenLoop struct {
	rng  *rand.Rand
	mean time.Duration
	pop  int64
	next time.Duration
}

// NewOpenLoop builds an arrival process with the given mean inter-arrival
// time over a population of logical clients, starting at simulated time
// start. mean must be positive; pop must be at least 1.
func NewOpenLoop(seed int64, mean time.Duration, pop int64, start time.Duration) *OpenLoop {
	if mean <= 0 {
		panic("workload: OpenLoop mean must be positive")
	}
	if pop < 1 {
		panic("workload: OpenLoop population must be at least 1")
	}
	return &OpenLoop{
		rng:  rand.New(rand.NewSource(seed)),
		mean: mean,
		pop:  pop,
		next: start,
	}
}

// Next returns the next arrival: its absolute simulated time and the logical
// client it belongs to. Successive calls are strictly increasing in time.
func (o *OpenLoop) Next() (at time.Duration, client int64) {
	gap := time.Duration(math.Round(o.rng.ExpFloat64() * float64(o.mean)))
	if gap < 1 {
		gap = 1
	}
	o.next += gap
	return o.next, o.rng.Int63n(o.pop)
}

// Clone returns an independent arrival process with the same parameters,
// re-seeded and restarted at start.
func (o *OpenLoop) Clone(seed int64, start time.Duration) *OpenLoop {
	return NewOpenLoop(seed, o.mean, o.pop, start)
}
