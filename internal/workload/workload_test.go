package workload

import (
	"math"
	"testing"
)

func TestYCSBDeterministic(t *testing.T) {
	cfg := YCSBConfig{Seed: 5, Records: 100, ReadFrac: 0.9, InsertFrac: 0.1, ValueSize: 32, ZipfianKeys: true}
	g1, g2 := NewYCSB(cfg), NewYCSB(cfg)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Op != b.Op || a.Key != b.Key || string(a.Value) != string(b.Value) {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestYCSBMix(t *testing.T) {
	g := NewYCSB(YCSBConfig{Seed: 1, Records: 1000, ReadFrac: 0.9, InsertFrac: 0.1, ZipfianKeys: true})
	counts := map[Op]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().Op]++
	}
	readFrac := float64(counts[OpRead]) / 20000
	insFrac := float64(counts[OpInsert]) / 20000
	if math.Abs(readFrac-0.9) > 0.02 || math.Abs(insFrac-0.1) > 0.02 {
		t.Fatalf("mix off: read=%.3f insert=%.3f", readFrac, insFrac)
	}
}

func TestYCSBInsertsExtendKeyspace(t *testing.T) {
	g := NewYCSB(YCSBConfig{Seed: 2, Records: 10, ReadFrac: 0, InsertFrac: 1, ZipfianKeys: true})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		r := g.Next()
		if r.Op != OpInsert {
			t.Fatal("expected insert")
		}
		if seen[r.Key] {
			t.Fatalf("duplicate insert key %s", r.Key)
		}
		seen[r.Key] = true
		if len(r.Value) == 0 {
			t.Fatal("insert without value")
		}
	}
}

func TestYCSBZipfSkew(t *testing.T) {
	g := NewYCSB(YCSBConfig{Seed: 3, Records: 10000, ReadFrac: 1, ZipfianKeys: true})
	counts := map[string]int{}
	for i := 0; i < 50000; i++ {
		counts[g.Next().Key]++
	}
	// Popularity must be concentrated: the hottest key gets far more than
	// the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50000/10000*20 {
		t.Fatalf("no zipfian skew: max key count %d", max)
	}
}

func TestValueDeterministic(t *testing.T) {
	a := Value("key", 1, 64)
	b := Value("key", 1, 64)
	c := Value("key", 2, 64)
	d := Value("yek", 1, 64)
	if string(a) != string(b) {
		t.Fatal("Value not deterministic")
	}
	if string(a) == string(c) || string(a) == string(d) {
		t.Fatal("Value ignores version or key")
	}
	if len(Value("k", 1, 17)) != 17 {
		t.Fatal("Value wrong length")
	}
}

func TestFillSeq(t *testing.T) {
	g := NewFillSeq(100)
	prev := ""
	for i := 0; i < 100; i++ {
		r := g.Next()
		if r.Op != OpInsert || len(r.Value) != 100 {
			t.Fatalf("bad request %+v", r)
		}
		if r.Key <= prev {
			t.Fatal("fillseq keys not increasing")
		}
		prev = r.Key
	}
}

func TestWebDeterministicAndDistributed(t *testing.T) {
	cfg := WebConfig{Seed: 4, URLs: 1000, MeanSize: 8 << 10, CacheableFrac: 0.8}
	g1, g2 := NewWeb(cfg), NewWeb(cfg)
	sizes := make([]int, 0, 5000)
	cacheable := 0
	for i := 0; i < 5000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Key != b.Key || a.Size != b.Size || a.Cacheable != b.Cacheable {
			t.Fatal("web generator not deterministic")
		}
		if a.Op != OpWebGet || a.Size < 64 {
			t.Fatalf("bad request %+v", a)
		}
		sizes = append(sizes, a.Size)
		if a.Cacheable {
			cacheable++
		}
	}
	// Roughly 80% cacheable (weighted by popularity, so allow slack).
	frac := float64(cacheable) / 5000
	if frac < 0.5 || frac > 0.99 {
		t.Fatalf("cacheable fraction %.2f implausible", frac)
	}
	// Exponential-ish size distribution: mean near MeanSize over the
	// population (weighted sample will differ; sanity-check the per-object
	// oracle instead).
	var sum float64
	for i := uint64(0); i < 1000; i++ {
		sum += float64(g1.ObjectSize(i))
	}
	mean := sum / 1000
	if mean < 4<<10 || mean > 16<<10 {
		t.Fatalf("object size mean %.0f far from 8KiB", mean)
	}
	// Size and cacheability are per-object stable.
	if g1.ObjectSize(7) != g1.ObjectSize(7) || g1.Cacheable(7) != g1.Cacheable(7) {
		t.Fatal("object oracle unstable")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpRead: "READ", OpInsert: "INSERT", OpUpdate: "UPDATE", OpDelete: "DELETE", OpWebGet: "GET",
	} {
		if op.String() != want {
			t.Fatalf("%d.String() = %s", op, op.String())
		}
	}
}
