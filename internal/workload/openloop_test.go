package workload

import (
	"testing"
	"time"
)

func TestOpenLoopDeterministic(t *testing.T) {
	a := NewOpenLoop(42, 50*time.Microsecond, 1_000_000, 0)
	b := NewOpenLoop(42, 50*time.Microsecond, 1_000_000, 0)
	prev := time.Duration(-1)
	for i := 0; i < 10_000; i++ {
		at1, c1 := a.Next()
		at2, c2 := b.Next()
		if at1 != at2 || c1 != c2 {
			t.Fatalf("arrival %d diverged: (%v,%d) vs (%v,%d)", i, at1, c1, at2, c2)
		}
		if at1 <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v after %v", i, at1, prev)
		}
		prev = at1
		if c1 < 0 || c1 >= 1_000_000 {
			t.Fatalf("client %d outside population", c1)
		}
	}
}

func TestOpenLoopMeanRate(t *testing.T) {
	const mean = 100 * time.Microsecond
	o := NewOpenLoop(7, mean, 10, 0)
	const n = 50_000
	var last time.Duration
	for i := 0; i < n; i++ {
		last, _ = o.Next()
	}
	got := float64(last) / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Fatalf("empirical mean inter-arrival %v, want within 5%% of %v",
			time.Duration(got), mean)
	}
}

func TestOpenLoopCloneIndependent(t *testing.T) {
	o := NewOpenLoop(1, time.Millisecond, 100, 0)
	o.Next()
	o.Next()
	c := o.Clone(1, 0)
	fresh := NewOpenLoop(1, time.Millisecond, 100, 0)
	for i := 0; i < 100; i++ {
		at1, c1 := c.Next()
		at2, c2 := fresh.Next()
		if at1 != at2 || c1 != c2 {
			t.Fatalf("clone diverged from fresh stream at %d", i)
		}
	}
}
