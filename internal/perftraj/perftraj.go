// Package perftraj collects the preserve-path performance trajectory: a
// small, schema-versioned set of simulated-clock metrics for the operations
// the incremental-preservation work optimises (preserve_exec commit latency
// at several dirty fractions, restart-to-first-request, live-migration delta
// rounds and cutover windows, and the cost-model scan/fork terms). Because
// every metric is read off the deterministic
// simulation clock, the collected numbers are bit-stable across hosts and
// runs — which is what lets a checked-in BENCH_preserve.json act as a CI
// regression gate instead of a flaky wall-clock threshold.
package perftraj

import (
	"encoding/json"
	"fmt"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// SchemaVersion gates baseline comparisons: a trajectory written under a
// different schema never silently compares against this code's metrics.
const SchemaVersion = 1

// Pages is the preserved-set size every scenario uses — large enough that
// the O(pages) and O(dirty) terms separate cleanly.
const Pages = 10000

// Metric is one named measurement: simulated-clock nanoseconds for latency
// metrics, or a raw count for the migrate_rounds/pages_shipped volume
// metrics — both deterministic, both gated by the same regression ratio.
type Metric struct {
	Name     string `json:"name"`
	SimNanos int64  `json:"sim_nanos"`
}

// Trajectory is the full collected set, ordered deterministically.
type Trajectory struct {
	Schema  int      `json:"schema"`
	Pages   int      `json:"pages"`
	Metrics []Metric `json:"metrics"`
}

// Get returns a metric by name.
func (t Trajectory) Get(name string) (int64, bool) {
	for _, m := range t.Metrics {
		if m.Name == name {
			return m.SimNanos, true
		}
	}
	return 0, false
}

// region is where scenarios map the preserved set.
const region = mem.VAddr(0x2000_0000)

// PreserveCommit measures preserve_exec commit latency over a pages-sized
// preserved range: the first preserve (no cache, every resident page hashed)
// and a second preserve after exactly dirty pages were rewritten, which
// exercises the delta-checksum path. Both durations are simulated time.
func PreserveCommit(pages, dirty int) (first, second time.Duration, err error) {
	m := kernel.NewMachine(1)
	p, err := m.Spawn(nil)
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		return 0, 0, err
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	spec := kernel.ExecSpec{Ranges: []linker.Range{{Start: region, Len: pages * mem.PageSize}}}

	t0 := m.Clock.Now()
	np, err := p.PreserveExec(spec)
	if err != nil {
		return 0, 0, fmt.Errorf("first preserve: %w", err)
	}
	first = m.Clock.Now() - t0

	// Rewrite dirty pages spread evenly across the set, so the delta walk
	// cannot benefit from range locality.
	if dirty > 0 {
		stride := pages / dirty
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < dirty; i++ {
			np.AS.WriteU64(region+mem.VAddr(i*stride%pages)*mem.PageSize, 0xD1D1)
		}
	}
	t1 := m.Clock.Now()
	if _, err := np.PreserveExec(spec); err != nil {
		return 0, 0, fmt.Errorf("second preserve (%d dirty): %w", dirty, err)
	}
	second = m.Clock.Now() - t1
	return first, second, nil
}

// RewindDomainRoundTrip measures the per-request rewind-domain primitives in
// simulated time: opening a domain on a process with a pages-sized mapped
// state (O(1) — capture is lazy), then discarding it after the request wrote
// touched pages (the rewind rung's whole unavailability window: CoW capture
// plus pre-image write-back, O(touched) and independent of pages).
func RewindDomainRoundTrip(pages, touched int) (begin, discard time.Duration, err error) {
	m := kernel.NewMachine(1)
	p, err := m.Spawn(nil)
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		return 0, 0, err
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}

	t0 := m.Clock.Now()
	if err := p.BeginRewindDomain(); err != nil {
		return 0, 0, err
	}
	begin = m.Clock.Now() - t0

	// Touch pages spread evenly across the set, as PreserveCommit does.
	stride := pages / touched
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < touched; i++ {
		p.AS.WriteU64(region+mem.VAddr(i*stride%pages)*mem.PageSize, 0xBEEF)
	}
	t1 := m.Clock.Now()
	n, err := p.DiscardRewindDomain()
	if err != nil {
		return 0, 0, err
	}
	if n != touched {
		return 0, 0, fmt.Errorf("perftraj: discard rolled back %d pages, want %d", n, touched)
	}
	discard = m.Clock.Now() - t1
	if v := p.AS.ReadU64(region); v != 1 {
		return 0, 0, fmt.Errorf("perftraj: page 0 reads %#x after discard", v)
	}
	return begin, discard, nil
}

// MigrationCosts accounts one live-migration round trip at a fixed dirty
// fraction. Durations are simulated clock; Rounds and ShippedPages are
// counts (stored in the trajectory under the same ratio gate — a convergence
// regression shows up as a page-volume jump just as a cost-model regression
// shows up as a latency jump).
type MigrationCosts struct {
	// FirstRound is the initial full-copy delta round: every page hashed
	// and shipped while the source keeps serving.
	FirstRound time.Duration
	// DeltaRound is a steady-state round after dirty pages were rewritten:
	// O(pages) stamp scan plus O(dirty) hash and ship.
	DeltaRound time.Duration
	// Cutover is the freeze window: the final delta round over dirty pages
	// plus successor construction on the destination (source + destination
	// clock time — the shard traffic is frozen across both).
	Cutover time.Duration
	// Rounds is the number of copy rounds including the cutover's final one.
	Rounds int
	// ShippedPages is the total transfer volume across all rounds.
	ShippedPages int
}

// MigrationRoundTrip measures the preserve-riding live migration (the shard
// rebalancing mechanism) over a pages-sized preserved set: a first full-copy
// round, one steady-state delta round after dirty pages were rewritten, and
// the cutover with a final delta of the same dirty size. The cutover window
// must scale with dirty, not pages — that contrast is what the trajectory
// pins by collecting it at 1% and 100% dirty.
func MigrationRoundTrip(pages, dirty int) (MigrationCosts, error) {
	var mc MigrationCosts
	m := kernel.NewMachine(1)
	src, err := m.Spawn(nil)
	if err != nil {
		return mc, err
	}
	if _, err := src.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		return mc, err
	}
	for i := 0; i < pages; i++ {
		src.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	dst := kernel.NewMachine(2)
	mg, err := kernel.StartMigration(src, dst, func() (kernel.ExecSpec, error) {
		return kernel.ExecSpec{
			InfoAddr: region + 64,
			Ranges:   []linker.Range{{Start: region, Len: pages * mem.PageSize}},
		}, nil
	})
	if err != nil {
		return mc, err
	}

	t0 := m.Clock.Now()
	if _, err := mg.DeltaRound(); err != nil {
		return mc, fmt.Errorf("first round: %w", err)
	}
	mc.FirstRound = m.Clock.Now() - t0

	// Rewrite dirty pages spread evenly, as PreserveCommit does, then run
	// one steady-state round. Each wave writes fresh values — same-content
	// rewrites would dedup at the checksum and never ship.
	redirty := func(val uint64) {
		stride := pages / dirty
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < dirty; i++ {
			src.AS.WriteU64(region+mem.VAddr(i*stride%pages)*mem.PageSize, val)
		}
	}
	redirty(0xD1D1)
	t1 := m.Clock.Now()
	st, err := mg.DeltaRound()
	if err != nil {
		return mc, fmt.Errorf("delta round: %w", err)
	}
	mc.DeltaRound = m.Clock.Now() - t1
	if st.Shipped != dirty {
		return mc, fmt.Errorf("perftraj: delta round shipped %d pages, want %d", st.Shipped, dirty)
	}

	// Final delta of the same size, then cutover. The freeze window is the
	// serial source + destination time.
	redirty(0xD1D2)
	t2, d2 := m.Clock.Now(), dst.Clock.Now()
	np, _, err := mg.Cutover()
	if err != nil {
		return mc, fmt.Errorf("cutover: %w", err)
	}
	mc.Cutover = (m.Clock.Now() - t2) + (dst.Clock.Now() - d2)
	mc.Rounds = mg.Rounds()
	mc.ShippedPages = mg.ShippedPages()
	if v := np.AS.ReadU64(region + mem.PageSize); v != 2 && dirty < pages {
		return mc, fmt.Errorf("perftraj: page 1 reads %#x on the destination", v)
	}
	return mc, nil
}

// SnapshotServeBatch measures one concurrent-serving cycle off the MVCC
// snapshot store in simulated time: committing a dirty-delta version of a
// pages-sized preserved set, then serving a read batch off the frozen view at
// one reader fan-out. The commit term is O(dirty); the batch term amortises
// across readers at the price of the reader spawns — collecting the same
// batch at 1, 4, and 16 readers pins that curve.
func SnapshotServeBatch(pages, dirty, reads, readers int) (time.Duration, error) {
	m := kernel.NewMachine(1)
	p, err := m.Spawn(nil)
	if err != nil {
		return 0, err
	}
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		return 0, err
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	store := mem.NewSnapshotStore(p.AS)
	store.Commit() // baseline full version, outside the measured window

	// Rewrite dirty pages spread evenly, as PreserveCommit does.
	stride := pages / dirty
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < dirty; i++ {
		p.AS.WriteU64(region+mem.VAddr(i*stride%pages)*mem.PageSize, 0xD1D1)
	}

	t0 := m.Clock.Now()
	v := store.Commit()
	m.Clock.Advance(m.Model.SnapshotCommit(v.Changed()))
	m.Clock.Advance(m.Model.ConcurrentReadBatch(reads, readers))
	dur := m.Clock.Now() - t0
	if v.Changed() != dirty {
		return 0, fmt.Errorf("perftraj: serve commit copied %d pages, want %d", v.Changed(), dirty)
	}
	if err := v.CheckFrozen(); err != nil {
		return 0, err
	}
	if got := v.View().ReadU64(region); got != 0xD1D1 {
		return 0, fmt.Errorf("perftraj: frozen view reads %#x, want dirtied value", got)
	}
	return dur, nil
}

// RestartToFirstRequest measures the full optimistic-recovery critical path
// in simulated time: PHOENIX restart of a process holding a pages-sized heap
// state, re-initialisation in the successor, and the first read of preserved
// state — the moment the application can serve again.
func RestartToFirstRequest(pages int) (time.Duration, error) {
	m := kernel.NewMachine(1)
	bld := linker.NewBuilder("perftraj", 0x0010_0000)
	bld.Var("cfg", 8, linker.SecData)
	p, err := m.Spawn(bld.Build())
	if err != nil {
		return 0, err
	}
	rt := core.Init(p, nil)
	h, err := rt.OpenHeap(heap.Options{})
	if err != nil {
		return 0, err
	}
	state := h.Alloc(pages * mem.PageSize)
	if state == mem.NullPtr {
		return 0, fmt.Errorf("perftraj: %d-page alloc failed", pages)
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(state+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}
	info := h.Alloc(16)
	p.AS.WritePtr(info, state)

	t0 := m.Clock.Now()
	np, err := rt.Restart(core.RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		return 0, err
	}
	rt2 := core.Init(np, nil)
	if _, err := rt2.OpenHeap(heap.Options{}); err != nil {
		return 0, err
	}
	got := np.AS.ReadPtr(rt2.RecoveryInfo())
	if v := np.AS.ReadU64(got); v != 1 {
		return 0, fmt.Errorf("perftraj: preserved state reads %#x after restart", v)
	}
	return m.Clock.Now() - t0, nil
}

// Collect runs every scenario and returns the trajectory.
func Collect() (Trajectory, error) {
	t := Trajectory{Schema: SchemaVersion, Pages: Pages}
	add := func(name string, d time.Duration) {
		t.Metrics = append(t.Metrics, Metric{Name: name, SimNanos: int64(d)})
	}

	full, d1, err := PreserveCommit(Pages, Pages/100) // 1% dirty
	if err != nil {
		return t, err
	}
	_, d10, err := PreserveCommit(Pages, Pages/10) // 10% dirty
	if err != nil {
		return t, err
	}
	_, d100, err := PreserveCommit(Pages, Pages) // 100% dirty
	if err != nil {
		return t, err
	}
	add("preserve_commit_full", full)
	add("preserve_commit_dirty_1pct", d1)
	add("preserve_commit_dirty_10pct", d10)
	add("preserve_commit_dirty_100pct", d100)

	restart, err := RestartToFirstRequest(Pages)
	if err != nil {
		return t, err
	}
	add("restart_to_first_request", restart)

	begin, disc1, err := RewindDomainRoundTrip(Pages, Pages/100) // 1% touched
	if err != nil {
		return t, err
	}
	_, disc10, err := RewindDomainRoundTrip(Pages, Pages/10) // 10% touched
	if err != nil {
		return t, err
	}
	add("rewind_domain_begin", begin)
	add("rewind_discard_touched_1pct", disc1)
	add("rewind_discard_touched_10pct", disc10)

	// Live-migration trajectory: steady-state delta rounds and the cutover
	// freeze window at 1% and 100% final delta. The count metrics (rounds,
	// pages shipped) ride the same >tolerance ratio gate — a convergence
	// regression inflates transfer volume even when per-page costs hold.
	mc1, err := MigrationRoundTrip(Pages, Pages/100) // 1% write rate
	if err != nil {
		return t, err
	}
	mc100, err := MigrationRoundTrip(Pages, Pages) // degenerate stop-and-copy
	if err != nil {
		return t, err
	}
	add("migrate_first_round", mc1.FirstRound)
	add("migrate_delta_round_1pct", mc1.DeltaRound)
	add("migrate_cutover_dirty_1pct", mc1.Cutover)
	add("migrate_cutover_dirty_100pct", mc100.Cutover)
	t.Metrics = append(t.Metrics,
		Metric{Name: "migrate_rounds_1pct", SimNanos: int64(mc1.Rounds)},
		Metric{Name: "migrate_pages_shipped_1pct", SimNanos: int64(mc1.ShippedPages)})

	// Cost-model terms the incremental path leans on, pinned so a model
	// change shows up in the trajectory diff rather than only downstream.
	model := kernel.NewMachine(1).Model
	add("dirty_scan", time.Duration(Pages)*model.DirtyScanPerPage)
	add("checksum_hash", time.Duration(Pages)*model.ChecksumPerPage)
	add("fork_cow_clean", model.ForkCoW(Pages, 0))

	// Concurrent-serving trajectory: a 128-read batch served off a committed
	// 1%-dirty MVCC version at each rung of the reader ladder — the curve the
	// concurrency campaign's ≥2x-at-4-readers contract rides on.
	for _, readers := range []int{1, 4, 16} {
		d, err := SnapshotServeBatch(Pages, Pages/100, 128, readers)
		if err != nil {
			return t, err
		}
		add(fmt.Sprintf("serve_batch_128_x%d", readers), d)
	}
	// Preserve staging, serial vs a 4-worker pool, at the trajectory's full
	// footprint (every page moved, hashed, and scanned): the parallel walk's
	// win must survive cost-model changes.
	add("preserve_stage_serial", model.PreserveExecDelta(Pages, 0, Pages, Pages))
	add("preserve_stage_parallel_4w", model.PreserveExecDeltaParallel(Pages, 0, Pages, Pages, 4))
	return t, nil
}

// Regression is one metric that moved past the comparison tolerance.
type Regression struct {
	Name          string  `json:"name"`
	BaselineNanos int64   `json:"baseline_nanos"`
	CurrentNanos  int64   `json:"current_nanos"`
	Ratio         float64 `json:"ratio"`
}

// Compare checks current against baseline: any metric slower than
// baseline*(1+tolerance) is a regression, and a baseline metric missing from
// current is an error (a renamed metric must update the baseline in the same
// change). Improvements are not flagged — refreshing the checked-in baseline
// on a win is deliberate, not forced.
func Compare(baseline, current Trajectory, tolerance float64) ([]Regression, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("perftraj: schema mismatch: baseline v%d vs current v%d", baseline.Schema, current.Schema)
	}
	if baseline.Pages != current.Pages {
		return nil, fmt.Errorf("perftraj: page-count mismatch: baseline %d vs current %d", baseline.Pages, current.Pages)
	}
	var regs []Regression
	for _, b := range baseline.Metrics {
		cur, ok := current.Get(b.Name)
		if !ok {
			return nil, fmt.Errorf("perftraj: baseline metric %q missing from current trajectory", b.Name)
		}
		if b.SimNanos <= 0 {
			return nil, fmt.Errorf("perftraj: baseline metric %q is non-positive (%d)", b.Name, b.SimNanos)
		}
		ratio := float64(cur) / float64(b.SimNanos)
		if ratio > 1+tolerance {
			regs = append(regs, Regression{Name: b.Name, BaselineNanos: b.SimNanos, CurrentNanos: cur, Ratio: ratio})
		}
	}
	return regs, nil
}

// Encode renders the trajectory as stable, human-diffable JSON.
func Encode(t Trajectory) ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses a trajectory, rejecting unknown fields so baseline drift is
// loud.
func Decode(data []byte) (Trajectory, error) {
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("perftraj: %w", err)
	}
	if t.Schema != SchemaVersion {
		return t, fmt.Errorf("perftraj: unsupported schema v%d (this build speaks v%d)", t.Schema, SchemaVersion)
	}
	return t, nil
}
