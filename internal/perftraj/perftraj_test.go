package perftraj

import (
	"bytes"
	"strings"
	"testing"
)

// TestCollectDeterministic: the trajectory is a pure function — two
// collections encode byte-identically, which is what makes the checked-in
// baseline a meaningful gate.
func TestCollectDeterministic(t *testing.T) {
	a, err := Collect()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect()
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := Encode(a)
	jb, _ := Encode(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("collections diverged:\n%s\n%s", ja, jb)
	}
	for _, m := range a.Metrics {
		if m.SimNanos <= 0 {
			t.Fatalf("metric %s is non-positive: %d", m.Name, m.SimNanos)
		}
	}
}

// TestIncrementalSpeedup pins the headline acceptance criterion: preserve
// commit at 1% dirty is at least 5x faster than at 100% dirty for the
// 10k-page set.
func TestIncrementalSpeedup(t *testing.T) {
	traj, err := Collect()
	if err != nil {
		t.Fatal(err)
	}
	d1, ok1 := traj.Get("preserve_commit_dirty_1pct")
	d100, ok100 := traj.Get("preserve_commit_dirty_100pct")
	if !ok1 || !ok100 {
		t.Fatalf("trajectory lacks the dirty-fraction metrics: %+v", traj.Metrics)
	}
	if ratio := float64(d100) / float64(d1); ratio < 5 {
		t.Fatalf("1%% dirty commit only %.1fx faster than 100%% (want >= 5x): %d vs %d ns", ratio, d1, d100)
	}
	full, _ := traj.Get("preserve_commit_full")
	if d100 > full {
		t.Fatalf("100%% dirty incremental commit (%d) slower than the cold full commit (%d)", d100, full)
	}
}

// TestMigrationCutoverScaling pins the live-migration claim the shard
// fabric rides: the cutover freeze window at a 1% final delta is far
// smaller than the degenerate stop-and-copy cutover at 100%, and the
// steady-state delta round beats the first full-copy round.
func TestMigrationCutoverScaling(t *testing.T) {
	mc1, err := MigrationRoundTrip(Pages, Pages/100)
	if err != nil {
		t.Fatal(err)
	}
	mc100, err := MigrationRoundTrip(Pages, Pages)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(mc100.Cutover) / float64(mc1.Cutover); ratio < 3 {
		t.Fatalf("1%%-delta cutover only %.1fx faster than stop-and-copy (want >= 3x): %d vs %d ns",
			ratio, mc1.Cutover, mc100.Cutover)
	}
	if mc1.DeltaRound >= mc1.FirstRound {
		t.Fatalf("steady-state round (%d ns) not cheaper than full-copy round (%d ns)",
			mc1.DeltaRound, mc1.FirstRound)
	}
	if mc1.Rounds != 3 {
		t.Fatalf("round trip ran %d rounds, want 3 (full, delta, cutover)", mc1.Rounds)
	}
	if want := Pages + 2*Pages/100; mc1.ShippedPages != want {
		t.Fatalf("shipped %d pages, want %d (full set + two 1%% deltas)", mc1.ShippedPages, want)
	}
}

// TestCompare covers the gate semantics: within-tolerance passes, a slow
// metric regresses, a missing metric errors, and schema drift errors.
func TestCompare(t *testing.T) {
	base := Trajectory{Schema: SchemaVersion, Pages: Pages, Metrics: []Metric{
		{Name: "a", SimNanos: 1000}, {Name: "b", SimNanos: 2000},
	}}
	cur := Trajectory{Schema: SchemaVersion, Pages: Pages, Metrics: []Metric{
		{Name: "a", SimNanos: 1150}, {Name: "b", SimNanos: 2500},
	}}
	regs, err := Compare(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "b" {
		t.Fatalf("want exactly metric b flagged, got %+v", regs)
	}

	missing := Trajectory{Schema: SchemaVersion, Pages: Pages, Metrics: []Metric{{Name: "a", SimNanos: 1}}}
	if _, err := Compare(base, missing, 0.20); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing metric not rejected: %v", err)
	}
	drift := cur
	drift.Schema = SchemaVersion + 1
	if _, err := Compare(base, drift, 0.20); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema drift not rejected: %v", err)
	}
}

// TestEncodeDecodeRoundTrip: the JSON survives a round trip and rejects
// unsupported schemas.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	traj := Trajectory{Schema: SchemaVersion, Pages: Pages, Metrics: []Metric{{Name: "x", SimNanos: 7}}}
	data, err := Encode(traj)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Get("x"); v != 7 {
		t.Fatalf("round trip lost the metric: %+v", back)
	}
	if _, err := Decode([]byte(`{"schema": 999, "pages": 1, "metrics": []}`)); err == nil {
		t.Fatal("future schema accepted")
	}
}
