// Package simclock provides a deterministic virtual clock used by every
// timed component in the PHOENIX simulation.
//
// All experiment timings in this repository are expressed in simulated time:
// operations advance the clock by modelled costs (see internal/costmodel)
// instead of consuming wall-clock time. This makes experiments deterministic,
// hardware-independent, and fast, while preserving the relative shapes the
// paper reports (downtime ratios, warm-up curves, crossover points).
package simclock

import (
	"fmt"
	"sort"
	"time"
)

// Clock is a deterministic virtual clock. It is not safe for concurrent use;
// the simulation is single-threaded by design (see DESIGN.md).
type Clock struct {
	now     time.Duration
	timers  []*Timer
	seq     uint64 // tie-break for timers with equal deadline
	offline bool
}

// New returns a clock positioned at time zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current simulated time as an offset from the simulation
// start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d, firing any timers whose deadline is
// reached, in deadline order. Advancing by a negative duration panics: the
// simulation clock is monotonic.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	target := c.now + d
	if c.offline {
		// Offline time accrues without firing main-timeline timers; see
		// RunOffline.
		c.now = target
		return
	}
	for {
		t := c.nextDue(target)
		if t == nil {
			break
		}
		c.now = t.deadline
		c.remove(t)
		t.fired = true
		if t.fn != nil {
			t.fn()
		}
	}
	c.now = target
}

// AdvanceTo moves the clock to the absolute simulated time ts (a no-op if ts
// is in the past).
func (c *Clock) AdvanceTo(ts time.Duration) {
	if ts > c.now {
		c.Advance(ts - c.now)
	}
}

// nextDue returns the earliest pending timer with deadline <= target.
func (c *Clock) nextDue(target time.Duration) *Timer {
	var best *Timer
	for _, t := range c.timers {
		if t.deadline > target {
			continue
		}
		if best == nil || t.deadline < best.deadline ||
			(t.deadline == best.deadline && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

func (c *Clock) remove(t *Timer) {
	for i, x := range c.timers {
		if x == t {
			c.timers = append(c.timers[:i], c.timers[i+1:]...)
			return
		}
	}
}

// RunOffline executes fn, measuring how much simulated time fn's operations
// would consume, without moving the main timeline: the clock is restored to
// its prior position afterwards and no timers fire. This models work running
// concurrently in a background process — cross-check validation's default
// recovery (§3.6) — whose duration matters (it delays the verdict) but whose
// execution does not stall the main process.
func (c *Clock) RunOffline(fn func()) time.Duration {
	if c.offline {
		panic("simclock: nested RunOffline")
	}
	saved := c.now
	c.offline = true
	defer func() {
		c.offline = false
		c.now = saved
	}()
	fn()
	return c.now - saved
}

// Timer is a one-shot virtual timer registered with a Clock.
type Timer struct {
	deadline time.Duration
	fn       func()
	fired    bool
	stopped  bool
	seq      uint64
}

// AfterFunc registers fn to run when the clock passes the current time plus d.
// fn runs synchronously inside Advance.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	c.seq++
	t := &Timer{deadline: c.now + d, fn: fn, seq: c.seq}
	c.timers = append(c.timers, t)
	return t
}

// Stop cancels the timer if it has not fired. It reports whether the timer
// was still pending.
func (c *Clock) Stop(t *Timer) bool {
	if t == nil || t.fired || t.stopped {
		return false
	}
	t.stopped = true
	c.remove(t)
	return true
}

// Fired reports whether the timer has already run.
func (t *Timer) Fired() bool { return t.fired }

// Deadline returns the timer's absolute deadline.
func (t *Timer) Deadline() time.Duration { return t.deadline }

// Pending returns the number of timers that have not fired or been stopped.
func (c *Clock) Pending() int { return len(c.timers) }

// PendingDeadlines returns the deadlines of all pending timers, sorted.
// It exists for tests and diagnostics.
func (c *Clock) PendingDeadlines() []time.Duration {
	out := make([]time.Duration, 0, len(c.timers))
	for _, t := range c.timers {
		out = append(out, t.deadline)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
