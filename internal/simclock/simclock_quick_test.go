package simclock

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// Property: for any schedule of timers and any split of the advance into
// segments, every due timer fires exactly once, in deadline order, with the
// clock positioned at its deadline when it runs.
func TestQuickTimerSchedule(t *testing.T) {
	f := func(delays []uint16, splits []uint8) bool {
		c := New()
		type firing struct {
			deadline time.Duration
			sawClock time.Duration
		}
		var fired []firing
		var want []time.Duration
		for _, d := range delays {
			dl := time.Duration(d) * time.Microsecond
			want = append(want, dl)
			deadline := dl
			c.AfterFunc(dl, func() {
				fired = append(fired, firing{deadline, c.Now()})
			})
		}
		// Advance in arbitrary chunks well past the last deadline.
		total := 70 * time.Millisecond
		var advanced time.Duration
		for _, s := range splits {
			step := time.Duration(s) * 100 * time.Microsecond
			c.Advance(step)
			advanced += step
		}
		if advanced < total {
			c.Advance(total - advanced)
		}
		if len(fired) != len(want) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i, f := range fired {
			if f.deadline != want[i] {
				return false // out of order
			}
			if f.sawClock != f.deadline {
				return false // clock not at the deadline during the callback
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunOffline leaves the main timeline untouched no matter how
// much offline time accrues, and reports exactly the accrued amount.
func TestQuickRunOffline(t *testing.T) {
	f := func(pre uint16, chunks []uint16) bool {
		c := New()
		c.Advance(time.Duration(pre) * time.Microsecond)
		before := c.Now()
		var want time.Duration
		got := c.RunOffline(func() {
			for _, ch := range chunks {
				d := time.Duration(ch) * time.Microsecond
				c.Advance(d)
				want += d
			}
		})
		return got == want && c.Now() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Timers scheduled before RunOffline must not fire during it.
func TestRunOfflineDefersTimers(t *testing.T) {
	c := New()
	fired := false
	c.AfterFunc(time.Millisecond, func() { fired = true })
	c.RunOffline(func() { c.Advance(time.Second) })
	if fired {
		t.Fatal("timer fired on the offline timeline")
	}
	c.Advance(2 * time.Millisecond)
	if !fired {
		t.Fatal("timer lost after RunOffline")
	}
}

func TestRunOfflineNestedPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nested RunOffline did not panic")
		}
	}()
	c.RunOffline(func() { c.RunOffline(func() {}) })
}
