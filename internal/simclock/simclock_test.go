package simclock

import (
	"testing"
	"time"
)

func TestAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(10 * time.Millisecond)
	if got := c.Now(); got != 15*time.Millisecond {
		t.Fatalf("Now() = %v, want 15ms", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	New().Advance(-time.Nanosecond)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(7 * time.Second)
	if c.Now() != 7*time.Second {
		t.Fatalf("AdvanceTo: Now() = %v", c.Now())
	}
	c.AdvanceTo(3 * time.Second) // no-op in the past
	if c.Now() != 7*time.Second {
		t.Fatalf("AdvanceTo past moved clock: %v", c.Now())
	}
}

func TestTimerFires(t *testing.T) {
	c := New()
	var fired []time.Duration
	c.AfterFunc(10*time.Millisecond, func() { fired = append(fired, c.Now()) })
	c.AfterFunc(5*time.Millisecond, func() { fired = append(fired, c.Now()) })
	c.Advance(20 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d timers, want 2", len(fired))
	}
	if fired[0] != 5*time.Millisecond || fired[1] != 10*time.Millisecond {
		t.Fatalf("timers fired at %v, want [5ms 10ms]", fired)
	}
	if c.Now() != 20*time.Millisecond {
		t.Fatalf("clock at %v after Advance", c.Now())
	}
}

func TestTimerOrderTieBreak(t *testing.T) {
	c := New()
	var order []int
	c.AfterFunc(time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(time.Millisecond, func() { order = append(order, 2) })
	c.Advance(time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("equal-deadline timers fired in order %v, want [1 2]", order)
	}
}

func TestTimerNotYetDue(t *testing.T) {
	c := New()
	fired := false
	c.AfterFunc(10*time.Millisecond, func() { fired = true })
	c.Advance(9 * time.Millisecond)
	if fired {
		t.Fatal("timer fired early")
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
	c.Advance(time.Millisecond)
	if !fired {
		t.Fatal("timer did not fire at deadline")
	}
}

func TestStop(t *testing.T) {
	c := New()
	fired := false
	tm := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !c.Stop(tm) {
		t.Fatal("Stop returned false for pending timer")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if c.Stop(tm) {
		t.Fatal("second Stop returned true")
	}
}

func TestStopAfterFire(t *testing.T) {
	c := New()
	tm := c.AfterFunc(time.Millisecond, func() {})
	c.Advance(time.Millisecond)
	if !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if c.Stop(tm) {
		t.Fatal("Stop after fire returned true")
	}
}

func TestTimerSchedulesTimer(t *testing.T) {
	c := New()
	var at []time.Duration
	c.AfterFunc(time.Millisecond, func() {
		at = append(at, c.Now())
		c.AfterFunc(time.Millisecond, func() { at = append(at, c.Now()) })
	})
	c.Advance(5 * time.Millisecond)
	if len(at) != 2 || at[0] != time.Millisecond || at[1] != 2*time.Millisecond {
		t.Fatalf("cascaded timers fired at %v", at)
	}
}

func TestPendingDeadlines(t *testing.T) {
	c := New()
	c.AfterFunc(3*time.Millisecond, nil)
	c.AfterFunc(time.Millisecond, nil)
	dl := c.PendingDeadlines()
	if len(dl) != 2 || dl[0] != time.Millisecond || dl[1] != 3*time.Millisecond {
		t.Fatalf("PendingDeadlines = %v", dl)
	}
}

func TestNegativeAfterFuncClamps(t *testing.T) {
	c := New()
	fired := false
	c.AfterFunc(-time.Second, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay timer did not fire immediately")
	}
}
